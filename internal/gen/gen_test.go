package gen

import (
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/stream"
)

func TestSequenceUniqueIDs(t *testing.T) {
	s := &Sequence{}
	seenV := map[graph.VertexID]bool{}
	seenE := map[graph.EdgeID]bool{}
	for i := 0; i < 1000; i++ {
		v := s.NextVertex()
		e := s.NextEdge()
		if seenV[v] || seenE[e] {
			t.Fatalf("duplicate ID handed out")
		}
		seenV[v], seenE[e] = true, true
	}
	if s.VertexHigh() != 1000 || s.EdgeHigh() != 1000 {
		t.Fatalf("high-water marks wrong: %d %d", s.VertexHigh(), s.EdgeHigh())
	}
	off := NewSequence(5000, 9000)
	if off.NextVertex() != 5001 || off.NextEdge() != 9001 {
		t.Fatalf("offset sequence wrong")
	}
}

func TestNetFlowDeterministic(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 500
	a := NewNetFlow(cfg, nil).Generate()
	b := NewNetFlow(cfg, nil).Generate()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("wrong edge counts: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Edge.ID != b[i].Edge.ID || a[i].Edge.Source != b[i].Edge.Source ||
			a[i].Edge.Type != b[i].Edge.Type || a[i].Edge.Timestamp != b[i].Edge.Timestamp {
			t.Fatalf("generator not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 999
	c := NewNetFlow(cfg, nil).Generate()
	same := true
	for i := range a {
		if a[i].Edge.Source != c[i].Edge.Source || a[i].Edge.Target != c[i].Edge.Target {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestNetFlowStreamProperties(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 2000
	cfg.Hosts = 100
	cfg.Servers = 10
	g := NewNetFlow(cfg, nil)
	edges := g.Generate()
	if len(g.Hosts()) != 100 || len(g.Servers()) != 10 {
		t.Fatalf("population sizes wrong")
	}
	var last graph.Timestamp
	typeCounts := map[string]int{}
	for i, se := range edges {
		if se.Edge.Timestamp < last {
			t.Fatalf("timestamps not monotone at %d", i)
		}
		last = se.Edge.Timestamp
		if se.Edge.Source == se.Edge.Target {
			t.Fatalf("self loop generated at %d", i)
		}
		typeCounts[se.Edge.Type]++
		if se.Edge.ID == 0 {
			t.Fatalf("zero edge ID at %d", i)
		}
	}
	if typeCounts[EdgeFlow] == 0 || typeCounts[EdgeDNS] == 0 || typeCounts[EdgeICMPReq] == 0 {
		t.Fatalf("expected a mix of edge types, got %v", typeCounts)
	}
	if typeCounts[EdgeFlow] < typeCounts[EdgeDNS] {
		t.Fatalf("flow should dominate dns: %v", typeCounts)
	}
}

func TestNetFlowSourceMatchesGenerate(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 300
	fromSlice := NewNetFlow(cfg, nil).Generate()
	src := NewNetFlow(cfg, nil).Source()
	fromSource, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSource) != len(fromSlice) {
		t.Fatalf("source yielded %d edges, slice %d", len(fromSource), len(fromSlice))
	}
	for i := range fromSlice {
		if fromSlice[i].Edge.ID != fromSource[i].Edge.ID {
			t.Fatalf("source and slice diverge at %d", i)
		}
	}
}

func TestNetFlowSkewedDegrees(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 5000
	cfg.Hosts = 200
	cfg.Servers = 20
	edges := NewNetFlow(cfg, nil).Generate()
	indeg := map[graph.VertexID]int{}
	for _, se := range edges {
		indeg[se.Edge.Target]++
	}
	max, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(len(indeg))
	if float64(max) < 5*mean {
		t.Fatalf("degree distribution not heavy-tailed: max %d vs mean %.1f", max, mean)
	}
}

func TestInjectorSmurfStructure(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 10
	nf := NewNetFlow(cfg, nil)
	in := NewInjector(DefaultInjectorConfig(), nf.Hosts(), nf.Sequence())
	edges, inst := in.Smurf(cfg.Start)
	if inst.Kind != AttackSmurf {
		t.Fatalf("kind = %v", inst.Kind)
	}
	if len(edges) != 2*DefaultInjectorConfig().SmurfAmplifiers {
		t.Fatalf("smurf edge count = %d", len(edges))
	}
	attacker, victim := inst.Actors[0], inst.Actors[1]
	for i := 0; i < len(edges); i += 2 {
		req, rep := edges[i], edges[i+1]
		if req.Edge.Type != EdgeICMPReq || rep.Edge.Type != EdgeICMPReply {
			t.Fatalf("edge types wrong at %d: %s %s", i, req.Edge.Type, rep.Edge.Type)
		}
		if req.Edge.Source != attacker {
			t.Fatalf("request not from attacker")
		}
		if req.Edge.Target != rep.Edge.Source {
			t.Fatalf("reply does not come from the amplifier that was pinged")
		}
		if rep.Edge.Target != victim {
			t.Fatalf("reply not aimed at victim")
		}
		if rep.Edge.Timestamp < req.Edge.Timestamp {
			t.Fatalf("reply precedes request")
		}
	}
	if inst.End < inst.Start {
		t.Fatalf("instance interval inverted")
	}
	if len(inst.EdgeIDs) != len(edges) {
		t.Fatalf("ground truth edge list incomplete")
	}
}

func TestInjectorWormAndExfiltration(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	nf := NewNetFlow(cfg, nil)
	in := NewInjector(DefaultInjectorConfig(), nf.Hosts(), nf.Sequence())

	wEdges, wInst := in.Worm(cfg.Start)
	if len(wEdges) != 3*DefaultInjectorConfig().WormChainLength {
		t.Fatalf("worm edge count = %d", len(wEdges))
	}
	if len(wInst.Actors) != DefaultInjectorConfig().WormChainLength+1 {
		t.Fatalf("worm chain actors = %d", len(wInst.Actors))
	}

	eEdges, eInst := in.Exfiltration(cfg.Start)
	if len(eEdges) != 3 || len(eInst.Actors) != 3 {
		t.Fatalf("exfiltration shape wrong: %d edges, %d actors", len(eEdges), len(eInst.Actors))
	}
	if eEdges[0].Edge.Type != EdgeLogin || eEdges[1].Edge.Type != EdgeFileRead || eEdges[2].Edge.Type != EdgeFlow {
		t.Fatalf("exfiltration edge sequence wrong")
	}
	if b, _ := eEdges[2].Edge.Attrs.Get("bytes"); b.Int64() < 10_000_000 {
		t.Fatalf("exfiltration flow too small to trigger the query predicate")
	}
}

func TestInjectorInjectCountsAndOrder(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	nf := NewNetFlow(cfg, nil)
	in := NewInjector(DefaultInjectorConfig(), nf.Hosts(), nf.Sequence())
	end := cfg.Start.Add(time.Hour)
	edges, instances := in.Inject(AttackSmurf, 5, cfg.Start, end)
	if len(instances) != 5 {
		t.Fatalf("instances = %d", len(instances))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Edge.Timestamp > edges[i].Edge.Timestamp {
			t.Fatalf("injected edges not time ordered")
		}
	}
	if _, unknown := in.Inject(AttackKind("bogus"), 3, cfg.Start, end); len(unknown) != 0 {
		t.Fatalf("unknown attack kind should inject nothing")
	}
}

// TestInjectedSmurfDetectedByEngine is the end-to-end recall check: every
// injected Smurf attack leg must be reported by the engine over the merged
// background + attack stream.
func TestInjectedSmurfDetectedByEngine(t *testing.T) {
	cfg := DefaultNetFlowConfig()
	cfg.Edges = 3000
	cfg.Hosts = 300
	cfg.Servers = 20
	nf := NewNetFlow(cfg, nil)
	background := nf.Generate()

	icfg := DefaultInjectorConfig()
	icfg.SmurfAmplifiers = 5
	icfg.Spread = 10 * time.Second
	in := NewInjector(icfg, nf.Hosts(), nf.Sequence())
	end := background[len(background)-1].Edge.Timestamp
	attacks, instances := in.Inject(AttackSmurf, 3, cfg.Start, end)
	merged := stream.Merge(background, attacks)

	engine := core.New(nil)
	if _, err := engine.RegisterQuery(SmurfQuery(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Track detected (attacker, amplifier, victim) triples.
	detected := map[[3]graph.VertexID]bool{}
	for _, se := range merged {
		for _, ev := range engine.ProcessEdge(se) {
			a, _ := ev.Match.Vertex(0)
			m, _ := ev.Match.Vertex(1)
			v, _ := ev.Match.Vertex(2)
			detected[[3]graph.VertexID{a, m, v}] = true
		}
	}
	for _, inst := range instances {
		attacker, victim := inst.Actors[0], inst.Actors[1]
		for _, amp := range inst.Actors[2:] {
			if !detected[[3]graph.VertexID{attacker, amp, victim}] {
				t.Fatalf("injected smurf leg %v->%v->%v not detected", attacker, amp, victim)
			}
		}
	}
}

func TestNewsGeneratorStructureAndEvents(t *testing.T) {
	cfg := DefaultNewsConfig()
	cfg.Articles = 500
	cfg.Keywords = 100
	cfg.Locations = 20
	cfg.People = 50
	cfg.Orgs = 20
	cfg.EventClusters = 3
	cfg.EventArticles = 3
	n := NewNews(cfg, nil)
	edges, events := n.Generate()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if len(edges) == 0 {
		t.Fatalf("no edges generated")
	}
	var last graph.Timestamp
	for i, se := range edges {
		if se.Edge.Timestamp < last {
			t.Fatalf("merged stream not time ordered at %d", i)
		}
		last = se.Edge.Timestamp
	}
	for _, ev := range events {
		if len(ev.Articles) != 3 {
			t.Fatalf("event has %d articles", len(ev.Articles))
		}
		if ev.End < ev.Start {
			t.Fatalf("event interval inverted")
		}
	}
	// Every event article must mention the event keyword and location.
	byArticle := map[graph.VertexID]map[graph.VertexID]bool{}
	for _, se := range edges {
		if se.Edge.Type == EdgeMentions || se.Edge.Type == EdgeLocated {
			if byArticle[se.Edge.Source] == nil {
				byArticle[se.Edge.Source] = map[graph.VertexID]bool{}
			}
			byArticle[se.Edge.Source][se.Edge.Target] = true
		}
	}
	for _, ev := range events {
		for _, a := range ev.Articles {
			if !byArticle[a][ev.Keyword] || !byArticle[a][ev.Location] {
				t.Fatalf("event article %d missing keyword/location link", a)
			}
		}
	}
}

func TestNewsDeterministic(t *testing.T) {
	cfg := DefaultNewsConfig()
	cfg.Articles = 200
	e1, ev1 := NewNews(cfg, nil).Generate()
	e2, ev2 := NewNews(cfg, nil).Generate()
	if len(e1) != len(e2) || len(ev1) != len(ev2) {
		t.Fatalf("news generator not deterministic in sizes")
	}
	for i := range e1 {
		if e1[i].Edge.ID != e2[i].Edge.ID || e1[i].Edge.Target != e2[i].Edge.Target {
			t.Fatalf("news generator not deterministic at %d", i)
		}
	}
}

func TestPredefinedQueriesAreValid(t *testing.T) {
	w := 10 * time.Minute
	queries := []interface {
		NumEdges() int
		Name() string
	}{
		SmurfQuery(w), WormQuery(w), WormChainQuery(w), ExfiltrationQuery(w),
		NewsEventQuery(w, 3, ""), NewsEventQuery(w, 2, KeywordLabel(0)),
	}
	for _, q := range queries {
		if q.NumEdges() == 0 {
			t.Fatalf("query %s has no edges", q.Name())
		}
	}
	if NewsEventQuery(w, 0, "").NumEdges() != 4 {
		t.Fatalf("article count clamp failed")
	}
}
