package gen

// The cross-strategy equivalence matrix: every decomposition strategy ×
// every workload regime × every backend mode must detect the identical
// canonical match set. This is the safety net for all planner work — a
// decomposition (or a runtime plan swap) is free to change HOW matches are
// found, never WHICH matches are found. Run under -race in CI, the sharded
// cells double as a concurrency check.

import (
	"fmt"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/graph"
)

// tinyDriftWorkload is a laptop-second-scale drift workload: small enough
// for the matrix, long enough (in stream time) that the retention window
// rotates fully into the post-drift regime and adaptive cells actually
// re-plan.
func tinyDriftWorkload() Workload {
	return BenchDriftWorkload(4000, 200, 10*time.Second)
}

func tinyNewsWorkload() Workload {
	cfg := DefaultNewsConfig()
	cfg.Articles = 300
	cfg.Keywords = 90
	cfg.Locations = 15
	cfg.EventClusters = 2
	return NewsWorkload(cfg, 5*time.Minute, 2)
}

func TestCrossStrategyEquivalenceMatrix(t *testing.T) {
	workloads := []Workload{
		tinyNetflowWorkload(),
		tinyNewsWorkload(),
		tinyDriftWorkload(),
		tinyManyQueriesWorkload(),
	}
	type mode struct {
		name     string
		shards   int // 0 = single engine
		adaptive bool
		traced   bool // observability + edge-journey tracing on
		shared   bool // fold all queries into one shared evaluation DAG
	}
	modes := []mode{
		{"single", 0, false, false, false},
		{"single-adaptive", 0, true, false, false},
		{"sharded2", 2, false, false, false},
		{"sharded2-adaptive", 2, true, false, false},
		// Observability cells: histograms plus 1-in-1 trace sampling are
		// free to change HOW the run is recorded, never WHICH matches it
		// finds.
		{"single-traced", 0, false, true, false},
		{"sharded2-adaptive-traced", 2, true, true, false},
		// Shared-plan cells: the MQO DAG evaluates common subpatterns once
		// and fans matches out per query — byte-identical match sets are the
		// whole contract. The adaptive cell re-plans the shared DAG in place.
		{"single-shared", 0, false, false, true},
		{"single-shared-adaptive", 0, true, false, true},
		{"sharded2-shared", 2, false, false, true},
		{"sharded2-shared-adaptive", 2, true, false, true},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// The reference cell: single engine, default selective plan,
			// frozen.
			ref, _, err := RunSingle(w)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if len(ref) == 0 {
				t.Fatalf("reference run found no matches; the workload proves nothing")
			}
			for _, strat := range decompose.Strategies() {
				for _, m := range modes {
					strat, m := strat, m
					t.Run(fmt.Sprintf("%s/%s", strat, m.name), func(t *testing.T) {
						t.Parallel()
						opts := []streamworks.Option{
							streamworks.WithPlanStrategy(string(strat)),
							streamworks.WithAdaptivePlanning(m.adaptive),
							streamworks.WithSharedPlans(m.shared),
						}
						if m.traced {
							opts = append(opts,
								streamworks.WithObservability(true),
								streamworks.WithTraceSampling(1024, 1, 1<<30))
						}
						var (
							set MatchSet
							err error
						)
						if m.shards == 0 {
							set, _, err = RunSingle(w, opts...)
						} else {
							set, _, err = RunSharded(w, m.shards, opts...)
						}
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						if !set.Equal(ref) {
							t.Fatalf("match set diverges from reference: got %d matches, want %d",
								len(set), len(ref))
						}
					})
				}
			}
		})
	}
}

// TestAdaptiveReplansOnDrift pins the drift workload's reason to exist:
// with adaptive planning on, the engine actually re-plans (the matrix above
// only proves it is safe).
func TestAdaptiveReplansOnDrift(t *testing.T) {
	w := tinyDriftWorkload()
	_, m, err := RunSingle(w, streamworks.WithAdaptivePlanning(true))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replans == 0 {
		t.Fatalf("adaptive run never re-planned (checks=%d); drift workload or detector is broken\n%s",
			m.ReplanChecks, m)
	}
	if m.ReplanChecks == 0 {
		t.Fatalf("adaptive run never checked for drift")
	}
	var gens uint64
	for _, q := range m.Queries {
		if !q.Adaptive {
			t.Fatalf("query %s not marked adaptive", q.Name)
		}
		gens += q.PlanGeneration - 1
	}
	if gens != m.Replans {
		t.Fatalf("plan generations (%d swaps) disagree with Replans=%d", gens, m.Replans)
	}
}

// TestDriftWorkloadShape sanity-checks the generator extension: the stream
// is time-ordered with unique IDs, the split marks the mix rotation, and
// the post-drift segment is scan-heavy while the pre-drift one is not.
func TestDriftWorkloadShape(t *testing.T) {
	w := tinyDriftWorkload()
	if w.SplitAt <= 0 || w.SplitAt >= len(w.Edges) {
		t.Fatalf("SplitAt=%d of %d edges", w.SplitAt, len(w.Edges))
	}
	ids := make(map[graph.EdgeID]bool, len(w.Edges))
	last := w.Edges[0].Edge.Timestamp
	for _, se := range w.Edges {
		if se.Edge.Timestamp < last {
			t.Fatalf("stream not time-ordered")
		}
		last = se.Edge.Timestamp
		if ids[se.Edge.ID] {
			t.Fatalf("duplicate edge ID %d", se.Edge.ID)
		}
		ids[se.Edge.ID] = true
	}
	scanShare := func(edges []graph.StreamEdge) float64 {
		scans := 0
		for _, se := range edges {
			if se.Edge.Type == EdgeScan {
				scans++
			}
		}
		return float64(scans) / float64(max(len(edges), 1))
	}
	pre, post := scanShare(w.Edges[:w.SplitAt]), scanShare(w.Edges[w.SplitAt:])
	if pre > 0.10 {
		t.Fatalf("pre-drift stream already scan-heavy: %.2f", pre)
	}
	if post < 0.30 {
		t.Fatalf("post-drift stream not scan-heavy: %.2f", post)
	}
}
