package gen

import (
	"context"
	"fmt"
	"os"
	"testing"

	"github.com/streamworks/streamworks"
)

// WALOverheadResult measures one durability mode replaying one workload.
// The acceptance number tracked across PRs: "interval" (the streamworksd
// default — group-commit fsync) must stay within 10% of "off" edges/s.
// "always" (fsync per batch) is reported for operators weighing the
// zero-data-loss configuration; it is informational, not budgeted.
type WALOverheadResult struct {
	Workload    string  `json:"workload"`
	Engine      string  `json:"engine"` // "single" or "sharded-N"
	Mode        string  `json:"mode"`   // "off", "interval" or "always"
	EdgesPerSec float64 `json:"edges_per_sec"`
	// OverheadPct is the edges/s regression relative to the off mode of the
	// same run (zero for the off row itself).
	OverheadPct float64 `json:"overhead_pct"`
	Matches     int     `json:"matches"`
	// Frames and Fsyncs describe the WAL work one replay performs (zero for
	// the off mode), so a surprising overhead number can be read against the
	// I/O that produced it.
	Frames uint64 `json:"frames,omitempty"`
	Fsyncs uint64 `json:"fsyncs,omitempty"`
}

// walModes are the three durability configurations the overhead lane
// compares, keyed by the streamworksd -fsync policy name ("off" here means
// no -data-dir at all, not a WAL without fsync).
var walModes = []string{"off", "interval", "always"}

// walBenchBatch is the ingest batch size of one replay. The no-WAL baseline
// streams in the same batches, so the deltas isolate the WAL itself (frame
// encode, segment write, fsync schedule), not batching differences.
const walBenchBatch = 512

// walOverheadRounds mirrors the obs-overhead lane: interleaved measurement
// rounds per mode, best round kept, so slow machine phases cannot land on
// one mode and show up as phantom overhead.
const walOverheadRounds = 5

// runWALOnce replays w once under the given durability mode — a fresh data
// directory per replay, since recovery semantics are exactly what this lane
// must not trigger — and returns the match set plus the engine's final
// durability counters. A durable replay that degrades mid-run is an error,
// not a fast measurement. dir is the replay's fresh data directory ("" for
// the off mode); the caller owns its creation and removal so the measured
// region is the ingest work, not tmpfile churn.
func runWALOnce(w Workload, shards int, mode, dir string) (MatchSet, streamworks.DurabilityStats, error) {
	opts := []streamworks.Option{streamworks.WithEngineConfig(w.Engine)}
	if mode != "off" {
		opts = append(opts,
			streamworks.WithDataDir(dir),
			streamworks.WithFsyncPolicy(mode),
		)
	}
	type durableEngine interface {
		streamworks.Engine
		Durability() streamworks.DurabilityStats
	}
	var eng durableEngine
	if shards > 0 {
		eng = streamworks.NewSharded(append(opts, streamworks.WithShards(shards))...)
	} else {
		eng = streamworks.New(opts...)
	}
	defer eng.Close()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			return nil, streamworks.DurabilityStats{}, err
		}
	}
	set := make(MatchSet)
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		set.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		return nil, streamworks.DurabilityStats{}, err
	}
	defer sub.Close()
	for i := 0; i < len(w.Edges); i += walBenchBatch {
		if err := eng.ProcessBatch(ctx, w.Edges[i:min(i+walBenchBatch, len(w.Edges))]); err != nil {
			return nil, streamworks.DurabilityStats{}, err
		}
	}
	stats := eng.Durability()
	if mode != "off" && stats.Mode != "ok" {
		return nil, stats, fmt.Errorf("gen: wal overhead %s replay degraded (%d append errors)", mode, stats.AppendErrors)
	}
	if err := eng.Close(); err != nil {
		return nil, streamworks.DurabilityStats{}, err
	}
	<-sub.Done()
	return set, stats, nil
}

// BenchWALOverhead replays w under testing.Benchmark per durability mode and
// reports the throughput of each mode plus its regression against running
// without a WAL. All modes must detect the identical match set — durability
// is not allowed to change semantics — and a divergence is returned as an
// error.
func BenchWALOverhead(w Workload, shards int) ([]WALOverheadResult, error) {
	engine := "single"
	if shards > 0 {
		engine = fmt.Sprintf("sharded-%d", shards)
	}
	// benchDir hands each durable replay a fresh data directory, created and
	// removed outside any timed region: recovery must never trigger, and
	// tmpfile churn must never be billed to the WAL.
	benchDir := func(mode string) (string, func(), error) {
		if mode == "off" {
			return "", func() {}, nil
		}
		dir, err := os.MkdirTemp("", "sw-walbench")
		if err != nil {
			return "", nil, err
		}
		return dir, func() { os.RemoveAll(dir) }, nil
	}
	var out []WALOverheadResult
	var baseSet MatchSet
	for _, mode := range walModes {
		dir, cleanup, err := benchDir(mode)
		if err != nil {
			return nil, err
		}
		set, stats, err := runWALOnce(w, shards, mode, dir)
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("gen: wal overhead %s validation run: %w", mode, err)
		}
		if baseSet == nil {
			baseSet = set
		} else if !baseSet.Equal(set) {
			return nil, fmt.Errorf("gen: wal overhead: %s match set diverges from off (%d vs %d)",
				mode, len(set), len(baseSet))
		}
		out = append(out, WALOverheadResult{
			Workload: w.Name,
			Engine:   engine,
			Mode:     mode,
			Matches:  len(set),
			Frames:   stats.Frames,
			Fsyncs:   stats.Fsyncs,
		})
	}
	for round := 0; round < walOverheadRounds; round++ {
		for i, mode := range walModes {
			res := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					b.StopTimer()
					dir, cleanup, err := benchDir(mode)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					_, _, err = runWALOnce(w, shards, mode, dir)
					b.StopTimer()
					cleanup()
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
			if res.T > 0 {
				if eps := float64(len(w.Edges)) * float64(res.N) / res.T.Seconds(); eps > out[i].EdgesPerSec {
					out[i].EdgesPerSec = eps
				}
			}
		}
	}
	base := out[0].EdgesPerSec
	if base > 0 {
		for i := range out {
			out[i].OverheadPct = 100 * (1 - out[i].EdgesPerSec/base)
		}
	}
	return out, nil
}
