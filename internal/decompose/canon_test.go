package decompose

import (
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
)

// allEdges returns every edge ID of q in declaration order.
func allEdges(q *query.Graph) []query.EdgeID {
	out := make([]query.EdgeID, q.NumEdges())
	for i := range out {
		out[i] = query.EdgeID(i)
	}
	return out
}

// TestCanonicalizeIsomorphicVariants: the same wedge pattern declared with
// different vertex names, declaration orders and edge orders must canonicalize
// to one signature — that signature identity is what the MQO DAG shares on.
func TestCanonicalizeIsomorphicVariants(t *testing.T) {
	a := query.NewBuilder("a").
		Vertex("x", "Host").Vertex("y", "Host").Vertex("z", "Host").
		Edge("x", "y", "flow").Edge("y", "z", "flow").
		MustBuild()
	b := query.NewBuilder("b").
		Vertex("mid", "Host").Vertex("tail", "Host").Vertex("head", "Host").
		Edge("mid", "tail", "flow").Edge("head", "mid", "flow").
		MustBuild()
	fa := Canonicalize(a, allEdges(a), "a")
	fb := Canonicalize(b, allEdges(b), "b")
	if fa.Sig != fb.Sig {
		t.Fatalf("isomorphic wedges got different sigs:\n  %s\n  %s", fa.Sig, fb.Sig)
	}
	if strings.HasPrefix(fa.Sig, "opaque:") {
		t.Fatalf("small wedge fell back to opaque sig: %s", fa.Sig)
	}
	if fa.Graph.NumEdges() != 2 || fa.Graph.NumVertices() != 3 {
		t.Fatalf("canonical graph shape: %d vertices, %d edges", fa.Graph.NumVertices(), fa.Graph.NumEdges())
	}
}

// TestCanonicalizeDistinguishesStructure: a 2-path and a 2-star out of the
// same vertex must NOT share a signature, nor must different edge types or
// directions.
func TestCanonicalizeDistinguishesStructure(t *testing.T) {
	wedge := query.NewBuilder("w").
		Vertex("x", "Host").Vertex("y", "Host").Vertex("z", "Host").
		Edge("x", "y", "flow").Edge("y", "z", "flow").
		MustBuild()
	star := query.NewBuilder("s").
		Vertex("x", "Host").Vertex("y", "Host").Vertex("z", "Host").
		Edge("y", "x", "flow").Edge("y", "z", "flow").
		MustBuild()
	otherType := query.NewBuilder("o").
		Vertex("x", "Host").Vertex("y", "Host").Vertex("z", "Host").
		Edge("x", "y", "flow").Edge("y", "z", "dns").
		MustBuild()
	sigs := map[string]string{}
	for name, q := range map[string]*query.Graph{"wedge": wedge, "star": star, "otherType": otherType} {
		f := Canonicalize(q, allEdges(q), name)
		for prev, ps := range sigs {
			if ps == f.Sig {
				t.Fatalf("%s and %s share a signature: %s", name, prev, f.Sig)
			}
		}
		sigs[name] = f.Sig
	}
}

// TestCanonicalizePredicateKinds: predicates with the same textual value but
// different value kinds must not alias (Int(1) vs String("1")), and equal
// predicates in different declaration order must.
func TestCanonicalizePredicateKinds(t *testing.T) {
	intQ := query.NewBuilder("i").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow", query.Eq("port", graph.Int(1))).
		MustBuild()
	strQ := query.NewBuilder("s").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow", query.Eq("port", graph.String("1"))).
		MustBuild()
	fi := Canonicalize(intQ, allEdges(intQ), "i")
	fs := Canonicalize(strQ, allEdges(strQ), "s")
	if fi.Sig == fs.Sig {
		t.Fatalf("Int(1) and String(\"1\") predicates alias: %s", fi.Sig)
	}

	p1 := query.NewBuilder("p1").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow", query.Eq("port", graph.Int(1)), query.Exists("proto")).
		MustBuild()
	p2 := query.NewBuilder("p2").
		Vertex("x", "Host").Vertex("y", "Host").
		Edge("x", "y", "flow", query.Exists("proto"), query.Eq("port", graph.Int(1))).
		MustBuild()
	f1 := Canonicalize(p1, allEdges(p1), "p1")
	f2 := Canonicalize(p2, allEdges(p2), "p2")
	if f1.Sig != f2.Sig {
		t.Fatalf("predicate order changed the signature:\n  %s\n  %s", f1.Sig, f2.Sig)
	}
}

// TestCanonicalizeUndirected: undirected edges canonicalize identically
// regardless of which endpoint was declared as source.
func TestCanonicalizeUndirected(t *testing.T) {
	u1 := query.NewBuilder("u1").
		Vertex("x", "Host").Vertex("y", "Server").
		UndirectedEdge("x", "y", "link").
		MustBuild()
	u2 := query.NewBuilder("u2").
		Vertex("y", "Server").Vertex("x", "Host").
		UndirectedEdge("y", "x", "link").
		MustBuild()
	f1 := Canonicalize(u1, allEdges(u1), "u1")
	f2 := Canonicalize(u2, allEdges(u2), "u2")
	if f1.Sig != f2.Sig {
		t.Fatalf("undirected orientation changed the signature:\n  %s\n  %s", f1.Sig, f2.Sig)
	}
}

// TestCanonicalizeSubsetMaps: the fragment's query<->canonical maps must be
// mutually inverse and cover exactly the requested edge subset.
func TestCanonicalizeSubsetMaps(t *testing.T) {
	q := query.NewBuilder("sub").
		Window(time.Minute).
		Vertex("a", "Host").Vertex("b", "Host").Vertex("c", "Host").Vertex("d", "Host").
		Edge("a", "b", "flow").Edge("b", "c", "flow").Edge("c", "d", "dns").
		MustBuild()
	sub := []query.EdgeID{1, 2} // b->c flow, c->d dns
	f := Canonicalize(q, sub, "sub")
	if f.Graph.NumEdges() != 2 || f.Graph.NumVertices() != 3 {
		t.Fatalf("fragment shape: %d vertices, %d edges", f.Graph.NumVertices(), f.Graph.NumEdges())
	}
	for ce, qe := range f.EdgeToQuery {
		if got := f.EdgeFromQuery[qe]; got != query.EdgeID(ce) {
			t.Fatalf("edge map not inverse: canonical %d -> query %d -> canonical %d", ce, qe, got)
		}
		if qe != 1 && qe != 2 {
			t.Fatalf("fragment covers unrequested edge %d", qe)
		}
	}
	for cv, qv := range f.VertToQuery {
		if got := f.VertFromQuery[qv]; got != query.VertexID(cv) {
			t.Fatalf("vertex map not inverse: canonical %d -> query %d -> canonical %d", cv, qv, got)
		}
	}
	// The canonical edge's endpoints must be the canonical images of the
	// query edge's endpoints (same direction — these are directed edges).
	for ce, qe := range f.EdgeToQuery {
		cEdge := f.Graph.Edge(query.EdgeID(ce))
		qEdge := q.Edge(qe)
		if cEdge.Source != f.VertFromQuery[qEdge.Source] || cEdge.Target != f.VertFromQuery[qEdge.Target] {
			t.Fatalf("canonical edge %d endpoints disagree with query edge %d through the vertex map", ce, qe)
		}
		if cEdge.Type != qEdge.Type {
			t.Fatalf("canonical edge %d type %q != query edge type %q", ce, cEdge.Type, qEdge.Type)
		}
	}
}

// TestCanonicalizeOverBudgetFallback: a pattern whose refinement leaves one
// huge automorphism class (a k-star of identical edges) exceeds the labeling
// budget and must fall back to an opaque, scope-qualified signature instead
// of burning factorial time — and two different scopes must not share it.
func TestCanonicalizeOverBudgetFallback(t *testing.T) {
	b := query.NewBuilder("star")
	b.Vertex("hub", "Host")
	names := []string{}
	for i := 0; i < 9; i++ { // 9! = 362880 > canonMaxLabelings
		n := string(rune('a' + i))
		b.Vertex(n, "Host")
		names = append(names, n)
	}
	for _, n := range names {
		b.Edge("hub", n, "flow")
	}
	q := b.MustBuild()
	f1 := Canonicalize(q, allEdges(q), "scope1")
	f2 := Canonicalize(q, allEdges(q), "scope2")
	if !strings.HasPrefix(f1.Sig, "opaque:") {
		t.Fatalf("9-star did not fall back to opaque sig: %s", f1.Sig)
	}
	if f1.Sig == f2.Sig {
		t.Fatalf("opaque sigs from different scopes alias: %s", f1.Sig)
	}
}
