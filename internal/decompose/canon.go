// Canonical subpattern fragments: the common-subexpression layer under the
// shared-plan evaluation DAG (internal/mqo).
//
// A decomposition plan node covers a connected set of pattern edges of one
// query. Canonicalize relabels that subpattern's vertices into a canonical
// 0..n-1 space — chosen so that any two isomorphic subpatterns (same vertex
// and edge types, predicates, directions and shape, regardless of which
// query they came from or how its IDs were assigned) produce byte-identical
// canonical signatures and structurally identical canonical query graphs.
// The signature is the sharing key: queries whose plans contain isomorphic
// subtrees evaluate them through one DAG node, and the per-query views are
// recovered by remapping matches through the fragment's ID maps
// (match.Match.Remap) instead of re-running any graph search.
//
// Canonical labeling is exact up to the labeling budget: vertices are
// partitioned by an iterated neighborhood-refinement invariant and only
// permutations within invariant classes are enumerated, capped at
// canonMaxLabelings. Fragments whose automorphism-class structure exceeds
// the cap fall back to an opaque, never-shared signature — correctness is
// unaffected, only sharing is lost (and real detection patterns are far
// below the cap). Missed sharing between isomorphic fragments is always
// sound; a shared signature, by construction, implies isomorphism.
package decompose

import (
	"sort"
	"strconv"
	"strings"

	"github.com/streamworks/streamworks/internal/query"
)

// canonMaxLabelings caps how many within-class labelings Canonicalize
// enumerates before giving up on a canonical form (7! — a fragment whose
// vertices are this symmetric is pathological for a detection pattern).
const canonMaxLabelings = 5040

// Fragment is a canonicalized subpattern: a standalone query graph in
// canonical vertex/edge ID space plus the maps tying it back to the source
// query. Matches of Graph are translated to source-query space (and back)
// with the To/From maps; Sig is the structural sharing key.
type Fragment struct {
	// Sig is the canonical structural signature. Two fragments share it iff
	// they are isomorphic as typed, predicated, directed subpatterns (or, in
	// the over-budget fallback, never).
	Sig string
	// Graph is the subpattern rebuilt in canonical ID space: vertices named
	// c0..cn-1 in canonical order, edges in canonical order, window zero
	// (windows are a per-consumer concern — sharing ignores them).
	Graph *query.Graph
	// VertToQuery / EdgeToQuery map canonical IDs back to the source query.
	VertToQuery []query.VertexID
	EdgeToQuery []query.EdgeID
	// VertFromQuery / EdgeFromQuery are the inverse maps, covering exactly
	// the subpattern's vertices and edges.
	VertFromQuery map[query.VertexID]query.VertexID
	EdgeFromQuery map[query.EdgeID]query.EdgeID
}

// predSig renders a predicate list canonically: each predicate with its
// value's dynamic kind (so Int(5) and String("5") can never alias), the list
// sorted (conjunction order is semantically irrelevant).
func predSig(preds []query.Predicate) string {
	if len(preds) == 0 {
		return ""
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		if p.Op == query.OpExists {
			parts[i] = p.Attr + " exists"
		} else {
			parts[i] = p.Attr + " " + p.Op.String() + " " + p.Value.Kind().String() + ":" + p.Value.String()
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Canonicalize computes the canonical fragment of the subpattern of q
// induced by edges (which must be non-empty and connected — plan validation
// guarantees both for plan nodes). scope uniquifies the fallback signature
// of over-budget fragments; callers pass the registration name so a fragment
// that cannot be canonicalized is shared with nothing, not accidentally with
// an equally-uncanonicalizable fragment of another query.
func Canonicalize(q *query.Graph, edges []query.EdgeID, scope string) *Fragment {
	verts := q.EndpointsOf(edges)
	vidx := make(map[query.VertexID]int, len(verts)) // query vertex -> dense fragment slot
	for i, v := range verts {
		vidx[v] = i
	}

	// Iterated neighborhood refinement: start from (type, predicates,
	// fragment degree), then twice fold in the multiset of incident edge
	// descriptors with the neighbor's previous-round invariant. Two rounds
	// separate everything a Weisfeiler-Leman pass separates on patterns of
	// this size; anything still together is (almost always) automorphic and
	// handled by enumeration.
	inv := make([]string, len(verts))
	deg := make([]int, len(verts))
	for _, eid := range edges {
		e := q.Edge(eid)
		deg[vidx[e.Source]]++
		deg[vidx[e.Target]]++
	}
	for i, v := range verts {
		qv := q.Vertex(v)
		inv[i] = qv.Type + "(" + predSig(qv.Preds) + ")#" + strconv.Itoa(deg[i])
	}
	for round := 0; round < 2; round++ {
		next := make([]string, len(verts))
		for i := range verts {
			var incident []string
			for _, eid := range edges {
				e := q.Edge(eid)
				si, ti := vidx[e.Source], vidx[e.Target]
				if si != i && ti != i {
					continue
				}
				dir := "out"
				other := ti
				if ti == i && si != i {
					dir, other = "in", si
				} else if si == i && ti == i {
					dir, other = "self", i
				}
				if e.AnyDirection {
					dir = "any"
				}
				incident = append(incident, e.Type+"|"+predSig(e.Preds)+"|"+dir+"|"+inv[other])
			}
			sort.Strings(incident)
			next[i] = inv[i] + "{" + strings.Join(incident, ",") + "}"
		}
		inv = next
	}

	// Partition into invariant classes, classes ordered by invariant string,
	// vertices within a class by query ID (a deterministic but arbitrary
	// base order the enumeration permutes).
	classOf := make(map[string][]int)
	for i := range verts {
		classOf[inv[i]] = append(classOf[inv[i]], i)
	}
	classKeys := make([]string, 0, len(classOf))
	for k := range classOf {
		classKeys = append(classKeys, k)
	}
	sort.Strings(classKeys)
	base := make([]int, 0, len(verts)) // fragment slots in class order
	labelings := 1
	overBudget := false
	for _, k := range classKeys {
		cls := classOf[k]
		sort.Ints(cls)
		base = append(base, cls...)
		for f := 2; f <= len(cls); f++ {
			if labelings *= f; labelings > canonMaxLabelings {
				// Over budget: keep completing the base labeling (the
				// canonical graph is still built from it) but skip the
				// enumeration and emit the opaque signature.
				overBudget = true
				labelings = canonMaxLabelings + 1
			}
		}
	}

	// label[slot] = canonical index. The base labeling assigns canonical
	// indices in class order; enumeration permutes within classes.
	label := make([]int, len(verts))
	assign := func(order []int) {
		for pos, slot := range order {
			label[slot] = pos
		}
	}
	assign(base)

	renderEdges := func() string {
		parts := make([]string, 0, len(edges))
		for _, eid := range edges {
			e := q.Edge(eid)
			s, t := label[vidx[e.Source]], label[vidx[e.Target]]
			arrow := ">"
			if e.AnyDirection {
				arrow = "-"
				if s > t {
					s, t = t, s
				}
			}
			parts = append(parts, strconv.Itoa(s)+arrow+strconv.Itoa(t)+"["+e.Type+"|"+predSig(e.Preds)+"]")
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}

	var vertexSection strings.Builder
	for _, k := range classKeys {
		vertexSection.WriteString(strconv.Itoa(len(classOf[k])) + "*" + k + ";")
	}

	bestEdges := renderEdges()
	if !overBudget && labelings > 1 {
		bestOrder := append([]int(nil), base...)
		// Enumerate within-class permutations of the base order via Heap-less
		// odometer recursion over classes.
		var classes [][]int
		for _, k := range classKeys {
			classes = append(classes, classOf[k])
		}
		cur := append([]int(nil), base...)
		var walk func(ci, off int)
		var permute func(cls []int, k int, off int, ci int)
		walk = func(ci, off int) {
			if ci == len(classes) {
				assign(cur)
				if r := renderEdges(); r < bestEdges {
					bestEdges = r
					copy(bestOrder, cur)
				}
				return
			}
			permute(append([]int(nil), classes[ci]...), 0, off, ci)
		}
		permute = func(cls []int, k, off, ci int) {
			if k == len(cls) {
				walk(ci+1, off+len(cls))
				return
			}
			for i := k; i < len(cls); i++ {
				cls[k], cls[i] = cls[i], cls[k]
				copy(cur[off:], cls)
				permute(cls, k+1, off, ci)
				cls[k], cls[i] = cls[i], cls[k]
			}
			copy(cur[off:], cls)
		}
		walk(0, 0)
		assign(bestOrder)
		bestEdges = renderEdges()
	}

	sig := "v:" + vertexSection.String() + "|e:" + bestEdges
	if overBudget {
		// Opaque fallback: unique per (registration, edge set), shared with
		// nothing. Edge sets are per-plan-node unique within a query, and
		// registration names are unique within an engine.
		parts := make([]string, len(edges))
		for i, e := range edges {
			parts[i] = strconv.Itoa(int(e))
		}
		sig = "opaque:" + scope + ":" + strings.Join(parts, ",")
	}

	// Build the canonical graph under the winning labeling: vertices in
	// canonical index order, edges in canonical rendering order (ties broken
	// by source edge ID, keeping the construction deterministic even between
	// indistinguishable parallel edges).
	f := &Fragment{
		Sig:           sig,
		VertToQuery:   make([]query.VertexID, len(verts)),
		EdgeToQuery:   make([]query.EdgeID, 0, len(edges)),
		VertFromQuery: make(map[query.VertexID]query.VertexID, len(verts)),
		EdgeFromQuery: make(map[query.EdgeID]query.EdgeID, len(edges)),
	}
	b := query.NewBuilder("")
	names := make([]string, len(verts))
	for slot, v := range verts {
		f.VertToQuery[label[slot]] = v
		f.VertFromQuery[v] = query.VertexID(label[slot])
	}
	for idx, v := range f.VertToQuery {
		qv := q.Vertex(v)
		names[idx] = "c" + strconv.Itoa(idx)
		b.Vertex(names[idx], qv.Type, qv.Preds...)
	}
	type edgeEntry struct {
		key string
		qe  query.EdgeID
	}
	entries := make([]edgeEntry, 0, len(edges))
	for _, eid := range edges {
		e := q.Edge(eid)
		s, t := label[vidx[e.Source]], label[vidx[e.Target]]
		arrow := ">"
		if e.AnyDirection {
			arrow = "-"
			if s > t {
				s, t = t, s
			}
		}
		entries = append(entries, edgeEntry{
			key: strconv.Itoa(s) + arrow + strconv.Itoa(t) + "[" + e.Type + "|" + predSig(e.Preds) + "]",
			qe:  eid,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].qe < entries[j].qe
	})
	for fe, ent := range entries {
		e := q.Edge(ent.qe)
		s, t := int(f.VertFromQuery[e.Source]), int(f.VertFromQuery[e.Target])
		if e.AnyDirection {
			if s > t {
				s, t = t, s
			}
			b.UndirectedEdge(names[s], names[t], e.Type, e.Preds...)
		} else {
			b.Edge(names[s], names[t], e.Type, e.Preds...)
		}
		f.EdgeToQuery = append(f.EdgeToQuery, ent.qe)
		f.EdgeFromQuery[ent.qe] = query.EdgeID(fe)
	}
	g, err := b.Build()
	if err != nil {
		// Plan nodes are validated connected and non-empty, so the canonical
		// rebuild cannot fail; a failure here is a canonicalization bug.
		panic("decompose: canonical fragment rebuild failed: " + err.Error())
	}
	f.Graph = g
	return f
}
