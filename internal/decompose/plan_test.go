package decompose

import (
	"errors"
	"strings"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stats"
)

func newsQuery() *query.Graph {
	return query.NewBuilder("news").
		Vertex("a1", "Article").
		Vertex("a2", "Article").
		Vertex("k", "Keyword").
		Vertex("l", "Location").
		Edge("a1", "k", "mentions").
		Edge("a2", "k", "mentions").
		Edge("a1", "l", "located").
		Edge("a2", "l", "located").
		MustBuild()
}

func smurfQuery() *query.Graph {
	return query.NewBuilder("smurf").
		Vertex("attacker", "Host").
		Vertex("amp", "Host").
		Vertex("victim", "Host").
		Edge("attacker", "amp", "icmp_echo_req").
		Edge("amp", "victim", "icmp_echo_reply").
		MustBuild()
}

// newsSummary mirrors the stats package fixture: mentions are common,
// located edges are rare.
func newsSummary() *stats.Summary {
	s := stats.NewSummary(stats.WithTriadSampling(0))
	id := graph.EdgeID(0)
	next := func() graph.EdgeID { id++; return id }
	for i := 0; i < 80; i++ {
		s.Observe(graph.StreamEdge{
			Edge:       graph.Edge{ID: next(), Source: graph.VertexID(i), Target: graph.VertexID(1000 + i%20), Type: "mentions"},
			SourceType: "Article", TargetType: "Keyword",
		}, nil)
	}
	for i := 0; i < 20; i++ {
		s.Observe(graph.StreamEdge{
			Edge:       graph.Edge{ID: next(), Source: graph.VertexID(i), Target: graph.VertexID(2000 + i%3), Type: "located"},
			SourceType: "Article", TargetType: "Location",
		}, nil)
	}
	return s
}

func TestPlanAllStrategiesValidate(t *testing.T) {
	planner := NewPlanner(stats.NewEstimator(newsSummary()))
	for _, q := range []*query.Graph{newsQuery(), smurfQuery()} {
		for _, s := range Strategies() {
			t.Run(q.Name()+"/"+string(s), func(t *testing.T) {
				p, err := planner.Plan(q, s)
				if err != nil {
					t.Fatalf("Plan: %v", err)
				}
				if err := p.Validate(); err != nil {
					t.Fatalf("Validate: %v", err)
				}
				if p.Strategy != s {
					t.Fatalf("strategy not recorded")
				}
				if len(p.Root.Edges) != q.NumEdges() {
					t.Fatalf("root coverage wrong")
				}
			})
		}
	}
}

func TestPlanEagerLeavesAreSingleEdges(t *testing.T) {
	planner := NewPlanner(nil)
	p, err := planner.Plan(newsQuery(), StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	leaves := p.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("eager plan should have 4 leaves, got %d", len(leaves))
	}
	for _, l := range leaves {
		if l.Size() != 1 {
			t.Fatalf("eager leaf has %d edges", l.Size())
		}
	}
	// Left-deep over 4 leaves: 7 nodes, depth 4.
	if p.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", p.NumNodes())
	}
	if p.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", p.Depth())
	}
}

func TestPlanLazyLeavesAreWedges(t *testing.T) {
	planner := NewPlanner(nil)
	p, err := planner.Plan(newsQuery(), StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	leaves := p.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("lazy plan should pair the 4 edges into 2 leaves, got %d", len(leaves))
	}
	for _, l := range leaves {
		if l.Size() != 2 {
			t.Fatalf("lazy leaf has %d edges", l.Size())
		}
	}
}

func TestPlanSelectivePutsRarePrimitiveFirst(t *testing.T) {
	est := stats.NewEstimator(newsSummary())
	planner := NewPlanner(est)
	q := newsQuery()
	p, err := planner.Plan(q, StrategySelective)
	if err != nil {
		t.Fatal(err)
	}
	// The deepest (first-joined) leaf is the leftmost; walking Left pointers
	// from the root reaches it. It must contain a "located" edge because
	// located edges are 4x rarer than mentions.
	n := p.Root
	for !n.IsLeaf() {
		n = n.Left
	}
	foundLocated := false
	for _, eid := range n.Edges {
		if q.Edge(eid).Type == "located" {
			foundLocated = true
		}
	}
	if !foundLocated {
		t.Fatalf("selective plan did not anchor on the rare 'located' primitive: %v", p.String())
	}
}

func TestPlanSelectiveWithoutEstimatorUsesHeuristic(t *testing.T) {
	planner := NewPlanner(nil)
	q := query.NewBuilder("h").
		Vertex("a", "Host").
		Vertex("b", "Host").
		Vertex("c", "").
		Edge("a", "b", "rare", query.Gt("bytes", graph.Int(1))).
		Edge("b", "c", "").
		MustBuild()
	p, err := planner.Plan(q, StrategySelective)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanBalancedShallowerThanLeftDeep(t *testing.T) {
	// A path of 8 edges: balanced tree must be shallower than eager left-deep.
	b := query.NewBuilder("path")
	names := []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"}
	for _, n := range names {
		b.Vertex(n, "Host")
	}
	for i := 0; i < 8; i++ {
		b.Edge(names[i], names[i+1], "flow")
	}
	q := b.MustBuild()
	planner := NewPlanner(nil)
	balanced, err := planner.Plan(q, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := planner.Plan(q, StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Depth() >= eager.Depth() {
		t.Fatalf("balanced depth %d should be < eager depth %d", balanced.Depth(), eager.Depth())
	}
}

func TestPlanCutVertices(t *testing.T) {
	planner := NewPlanner(nil)
	q := smurfQuery()
	p, err := planner.Plan(q, StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.IsLeaf() {
		t.Fatalf("two-edge query with eager strategy must have a join root")
	}
	if len(p.Root.CutVertices) != 1 {
		t.Fatalf("cut vertices = %v, want exactly the amplifier", p.Root.CutVertices)
	}
	amp, _ := q.VertexByName("amp")
	if p.Root.CutVertices[0] != amp.ID {
		t.Fatalf("cut vertex is %v, want %v", p.Root.CutVertices[0], amp.ID)
	}
}

func TestPlanSingleEdgeQuery(t *testing.T) {
	q := query.NewBuilder("one").
		Vertex("a", "Host").Vertex("b", "Host").
		Edge("a", "b", "flow").
		MustBuild()
	planner := NewPlanner(nil)
	for _, s := range Strategies() {
		p, err := planner.Plan(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !p.Root.IsLeaf() || p.NumNodes() != 1 || p.Depth() != 1 {
			t.Fatalf("%s: single-edge query should be a single leaf", s)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	planner := NewPlanner(nil)
	if _, err := planner.Plan(nil, StrategyEager); err == nil {
		t.Fatalf("nil query accepted")
	}
	if _, err := planner.Plan(newsQuery(), Strategy("bogus")); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("unknown strategy accepted: %v", err)
	}
}

func TestPlanValidateDetectsCorruption(t *testing.T) {
	planner := NewPlanner(nil)
	q := newsQuery()
	p, err := planner.Plan(q, StrategyEager)
	if err != nil {
		t.Fatal(err)
	}
	// Remove an edge from the root: coverage violation.
	savedEdges := p.Root.Edges
	p.Root.Edges = p.Root.Edges[:len(p.Root.Edges)-1]
	if err := p.Validate(); !errors.Is(err, ErrPlanOverlap) && !errors.Is(err, ErrPlanCoverage) {
		t.Fatalf("corrupted coverage not detected: %v", err)
	}
	p.Root.Edges = savedEdges

	// Duplicate an edge in a child: overlap violation.
	savedLeft := p.Root.Left
	p.Root.Left = &Node{Edges: append([]query.EdgeID(nil), p.Root.Right.Edges...)}
	if err := p.Validate(); err == nil {
		t.Fatalf("overlapping children not detected")
	}
	p.Root.Left = savedLeft

	// Remove a child: degenerate internal node.
	savedRight := p.Root.Right
	p.Root.Right = nil
	if err := p.Validate(); !errors.Is(err, ErrPlanDegenerate) {
		t.Fatalf("degenerate node not detected: %v", err)
	}
	p.Root.Right = savedRight

	var empty *Plan
	if err := empty.Validate(); !errors.Is(err, ErrPlanEmpty) {
		t.Fatalf("nil plan not detected: %v", err)
	}
}

func TestPlanValidateDisconnectedNode(t *testing.T) {
	q := newsQuery()
	// Hand-build an invalid plan whose leaf {0,3} is disconnected
	// (a1-k mentions and a2-l located share no vertex).
	bad := &Plan{
		Query: q,
		Root: &Node{
			Edges: q.EdgeIDs(),
			Left:  &Node{Edges: []query.EdgeID{0, 3}},
			Right: &Node{Edges: []query.EdgeID{1, 2}},
		},
		Strategy: StrategyLazy,
	}
	if err := bad.Validate(); !errors.Is(err, ErrPlanDisconnected) {
		t.Fatalf("disconnected leaf not detected: %v", err)
	}
}

func TestPlanStringMentionsStrategyAndCut(t *testing.T) {
	planner := NewPlanner(stats.NewEstimator(newsSummary()))
	p, err := planner.Plan(newsQuery(), StrategySelective)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "selective") || !strings.Contains(s, "leaf") || !strings.Contains(s, "cut=") {
		t.Fatalf("String() missing expected content:\n%s", s)
	}
}

func TestPlannerMaxLeafEdges(t *testing.T) {
	planner := NewPlanner(nil)
	planner.SetMaxLeafEdges(1)
	p, err := planner.Plan(newsQuery(), StrategySelective)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Leaves() {
		if l.Size() != 1 {
			t.Fatalf("maxLeafEdges=1 violated: leaf %v", l.Edges)
		}
	}
	planner.SetMaxLeafEdges(0) // ignored
	p2, err := planner.Plan(newsQuery(), StrategySelective)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p2.Leaves() {
		if l.Size() != 1 {
			t.Fatalf("invalid SetMaxLeafEdges(0) changed the bound")
		}
	}
}

func TestStrategiesList(t *testing.T) {
	ss := Strategies()
	if len(ss) != 4 || ss[0] != StrategySelective {
		t.Fatalf("Strategies() = %v", ss)
	}
}
