// Package decompose implements StreamWorks query planning (paper §4.1): it
// partitions a query graph into small, selective search primitives and
// arranges them into a join tree. The tree is the blueprint from which the
// runtime SJ-Tree (internal/sjtree) is instantiated: leaves are the
// primitives searched locally as edges arrive, internal nodes are joins of
// their children, and the root covers the whole query graph.
//
// Several strategies are provided so the plan-quality experiment of the
// paper's Fig. 7 (the same query tracked under different SJ-Trees) can be
// reproduced: selectivity-ordered left-deep decomposition (the paper's
// approach), frequency-blind lazy (two-edge primitives) and eager
// (single-edge primitives) decompositions, and a balanced bisection tree.
package decompose

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/streamworks/streamworks/internal/query"
)

// Node is one node of a decomposition plan. Leaves carry a primitive (a
// small connected set of pattern edges); internal nodes cover the union of
// their children and record the cut vertices on which their children join.
type Node struct {
	// Edges is the set of pattern edges covered by the subtree rooted here,
	// sorted ascending.
	Edges []query.EdgeID
	// Left and Right are nil for leaves.
	Left  *Node
	Right *Node
	// CutVertices are the pattern vertices shared by the left and right
	// children (internal nodes only). Matches are hash-partitioned on the
	// projection onto these vertices, which is the paper's cut-subgraph.
	CutVertices []query.VertexID
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Size returns the number of pattern edges covered by the node.
func (n *Node) Size() int { return len(n.Edges) }

// Plan is a complete decomposition of a query graph.
type Plan struct {
	Query    *query.Graph
	Root     *Node
	Strategy Strategy
}

// Validation errors returned by Plan.Validate.
var (
	// ErrPlanEmpty is returned when the plan has no root.
	ErrPlanEmpty = errors.New("decompose: plan has no root")
	// ErrPlanCoverage is returned when the root does not cover the whole query.
	ErrPlanCoverage = errors.New("decompose: root does not cover all query edges")
	// ErrPlanOverlap is returned when the children of a node overlap or do
	// not partition the parent.
	ErrPlanOverlap = errors.New("decompose: node edges are not the disjoint union of its children")
	// ErrPlanDisconnected is returned when a node's edge set is not connected.
	ErrPlanDisconnected = errors.New("decompose: node subgraph is not connected")
	// ErrPlanDegenerate is returned when an internal node has only one child.
	ErrPlanDegenerate = errors.New("decompose: internal node must have exactly two children")
)

// Validate checks the SJ-Tree structural properties from the paper:
// Property 1 (the root's subgraph is the query graph), Property 2 (every
// internal node is the join of its two children, i.e. its edge set is the
// disjoint union of theirs) and the implementation requirements that every
// node's subgraph is connected and the tree is binary.
func (p *Plan) Validate() error {
	if p == nil || p.Root == nil {
		return ErrPlanEmpty
	}
	if len(p.Root.Edges) != p.Query.NumEdges() {
		return fmt.Errorf("%w: root has %d of %d edges", ErrPlanCoverage, len(p.Root.Edges), p.Query.NumEdges())
	}
	return p.validateNode(p.Root)
}

func (p *Plan) validateNode(n *Node) error {
	if len(n.Edges) == 0 {
		return fmt.Errorf("%w: empty node", ErrPlanCoverage)
	}
	if !p.Query.SubsetConnected(n.Edges) {
		return fmt.Errorf("%w: edges %v", ErrPlanDisconnected, n.Edges)
	}
	if n.IsLeaf() {
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return ErrPlanDegenerate
	}
	union := make(map[query.EdgeID]int)
	for _, e := range n.Left.Edges {
		union[e]++
	}
	for _, e := range n.Right.Edges {
		union[e]++
	}
	if len(union) != len(n.Edges) {
		return fmt.Errorf("%w: node %v vs children %v+%v", ErrPlanOverlap, n.Edges, n.Left.Edges, n.Right.Edges)
	}
	for _, e := range n.Edges {
		if union[e] != 1 {
			return fmt.Errorf("%w: edge %d", ErrPlanOverlap, e)
		}
	}
	if err := p.validateNode(n.Left); err != nil {
		return err
	}
	return p.validateNode(n.Right)
}

// EqualStructure reports whether p and o decompose the same query into the
// same tree: identical edge sets at every node, recursively. Strategy labels
// and cut-vertex annotations are ignored — cuts are derived from the edge
// partition, so equal partitions imply equal cuts. The adaptive re-planner
// uses this to skip no-op swaps when fresh statistics reproduce the plan
// already running.
func (p *Plan) EqualStructure(o *Plan) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.Query != o.Query {
		return false
	}
	var eq func(a, b *Node) bool
	eq = func(a, b *Node) bool {
		if a == nil || b == nil {
			return a == b
		}
		if len(a.Edges) != len(b.Edges) {
			return false
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				return false
			}
		}
		return eq(a.Left, b.Left) && eq(a.Right, b.Right)
	}
	return eq(p.Root, o.Root)
}

// Leaves returns the leaf nodes in left-to-right order; these are the search
// primitives whose local searches the engine runs for every arriving edge.
func (p *Plan) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	return out
}

// NumNodes returns the total number of nodes in the plan tree.
func (p *Plan) NumNodes() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(p.Root)
}

// Depth returns the height of the plan tree (a single leaf has depth 1).
func (p *Plan) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n == nil {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(p.Root)
}

// String renders the plan as an indented tree, annotating each node with its
// pattern edges (as "src -[type]-> dst") and internal nodes with their cut
// vertices. The swbench tool prints this for the plan-comparison experiment.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s strategy=%s nodes=%d depth=%d\n", p.Query.Name(), p.Strategy, p.NumNodes(), p.Depth())
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		if n == nil {
			return
		}
		pad := strings.Repeat("  ", indent)
		kind := "join"
		if n.IsLeaf() {
			kind = "leaf"
		}
		fmt.Fprintf(&sb, "%s%s %s", pad, kind, p.describeEdges(n.Edges))
		if !n.IsLeaf() {
			names := make([]string, len(n.CutVertices))
			for i, v := range n.CutVertices {
				names[i] = p.Query.Vertex(v).Name
			}
			fmt.Fprintf(&sb, "  cut={%s}", strings.Join(names, ","))
		}
		sb.WriteByte('\n')
		walk(n.Left, indent+1)
		walk(n.Right, indent+1)
	}
	walk(p.Root, 1)
	return sb.String()
}

func (p *Plan) describeEdges(edges []query.EdgeID) string {
	parts := make([]string, 0, len(edges))
	for _, eid := range edges {
		e := p.Query.Edge(eid)
		label := e.Type
		if label == "" {
			label = "*"
		}
		arrow := "->"
		if e.AnyDirection {
			arrow = "--"
		}
		parts = append(parts, fmt.Sprintf("%s-[%s]%s%s",
			p.Query.Vertex(e.Source).Name, label, arrow, p.Query.Vertex(e.Target).Name))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// newLeaf builds a leaf node with sorted edges.
func newLeaf(edges []query.EdgeID) *Node {
	sorted := append([]query.EdgeID(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Node{Edges: sorted}
}

// newJoin builds an internal node joining l and r, computing the union edge
// set and the cut vertices shared by the two children.
func newJoin(q *query.Graph, l, r *Node) *Node {
	edges := append(append([]query.EdgeID(nil), l.Edges...), r.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	leftVerts := q.EndpointsOf(l.Edges)
	rightVerts := make(map[query.VertexID]struct{})
	for _, v := range q.EndpointsOf(r.Edges) {
		rightVerts[v] = struct{}{}
	}
	var cut []query.VertexID
	for _, v := range leftVerts {
		if _, ok := rightVerts[v]; ok {
			cut = append(cut, v)
		}
	}
	return &Node{Edges: edges, Left: l, Right: r, CutVertices: cut}
}
