package decompose

import (
	"errors"
	"fmt"
	"sort"

	"github.com/streamworks/streamworks/internal/query"
	"github.com/streamworks/streamworks/internal/stats"
)

// Strategy selects how a query graph is decomposed into an SJ-Tree plan.
type Strategy string

const (
	// StrategySelective is the paper's approach: primitives of up to two
	// edges, ranked by estimated cardinality using the stream summary, with
	// the most selective primitive placed lowest in a left-deep join tree so
	// partial-match assembly only starts once the rare structure appears.
	StrategySelective Strategy = "selective"
	// StrategyLazy uses two-edge primitives in plain query-edge order
	// (frequency blind). It is the ablation of selectivity ordering.
	StrategyLazy Strategy = "lazy"
	// StrategyEager uses single-edge primitives in query-edge order; every
	// matching data edge immediately becomes a stored partial match. It is
	// the paper's "simplistic approach" strawman (§3.1).
	StrategyEager Strategy = "eager"
	// StrategyBalanced recursively bisects the query into connected halves,
	// producing a bushy tree of roughly logarithmic depth.
	StrategyBalanced Strategy = "balanced"
)

// Strategies lists all supported strategies in a stable order, used by the
// plan-comparison experiment and the CLI.
func Strategies() []Strategy {
	return []Strategy{StrategySelective, StrategyLazy, StrategyEager, StrategyBalanced}
}

// Planner builds decomposition plans for query graphs using a stream
// summary for selectivity estimates. A nil estimator is accepted: the
// selective strategy then degrades to structural heuristics (smaller
// primitives with typed, predicated vertices first).
type Planner struct {
	est *stats.Estimator
	// maxLeafEdges bounds the size of a search primitive; the paper keeps
	// primitives small ("small and selective") so local searches stay local.
	maxLeafEdges int
}

// NewPlanner constructs a planner. est may be nil.
func NewPlanner(est *stats.Estimator) *Planner {
	return &Planner{est: est, maxLeafEdges: 2}
}

// SetMaxLeafEdges overrides the maximum number of pattern edges per
// primitive (minimum 1).
func (p *Planner) SetMaxLeafEdges(n int) {
	if n >= 1 {
		p.maxLeafEdges = n
	}
}

// ErrUnknownStrategy is returned for unrecognized strategy names.
var ErrUnknownStrategy = errors.New("decompose: unknown strategy")

// Plan decomposes q using the given strategy.
func (p *Planner) Plan(q *query.Graph, s Strategy) (*Plan, error) {
	if q == nil || q.NumEdges() == 0 {
		return nil, fmt.Errorf("decompose: empty query")
	}
	var root *Node
	switch s {
	case StrategySelective:
		root = p.leftDeep(q, p.primitivesByBenefit(q, p.maxLeafEdges), true)
	case StrategyLazy:
		root = p.leftDeep(q, p.primitives(q, 2), false)
	case StrategyEager:
		root = p.leftDeep(q, p.primitives(q, 1), false)
	case StrategyBalanced:
		root = p.balanced(q, q.EdgeIDs())
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, s)
	}
	plan := &Plan{Query: q, Root: root, Strategy: s}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// primitives greedily partitions the query edges into connected primitives
// of at most maxEdges edges. Pairing prefers adjacent edges (sharing a
// vertex) so two-edge primitives are always wedges; leftovers become
// single-edge primitives.
func (p *Planner) primitives(q *query.Graph, maxEdges int) [][]query.EdgeID {
	unused := make(map[query.EdgeID]bool)
	for _, e := range q.EdgeIDs() {
		unused[e] = true
	}
	var prims [][]query.EdgeID
	for _, e := range q.EdgeIDs() {
		if !unused[e] {
			continue
		}
		prim := []query.EdgeID{e}
		unused[e] = false
		if maxEdges >= 2 {
			if partner, ok := p.bestPartner(q, e, unused); ok {
				prim = append(prim, partner)
				unused[partner] = false
			}
		}
		prims = append(prims, prim)
	}
	return prims
}

// primitivesByBenefit partitions the query edges into primitives like
// primitives, but pairs each edge with the adjacent partner that most
// reduces the *total* estimated match volume stored at the leaves:
//
//	benefit(e, p) = card({e}) + card({p}) − card({e, p})
//
// i.e. how much cheaper one wedge leaf is than the two singleton leaves it
// replaces. Minimizing the wedge estimate alone (bestPartner) can pair two
// rare edges and strand a flood-frequency edge as its own leaf — every one
// of those edges then becomes a stored partial match; absorbing the
// expensive edge into a wedge gated by a rare one is what keeps the SJ-Tree
// small. Pairs with no positive benefit stay singletons.
func (p *Planner) primitivesByBenefit(q *query.Graph, maxEdges int) [][]query.EdgeID {
	unused := make(map[query.EdgeID]bool)
	for _, e := range q.EdgeIDs() {
		unused[e] = true
	}
	var prims [][]query.EdgeID
	for _, e := range q.EdgeIDs() {
		if !unused[e] {
			continue
		}
		prim := []query.EdgeID{e}
		unused[e] = false
		if maxEdges >= 2 {
			if partner, ok := p.bestPartnerByBenefit(q, e, unused); ok {
				prim = append(prim, partner)
				unused[partner] = false
			}
		}
		prims = append(prims, prim)
	}
	return prims
}

// bestPartnerByBenefit picks the unused adjacent edge maximizing the
// pairing benefit. Neutral pairings (benefit 0, e.g. under cold statistics
// where every estimate is 1) are still taken — small leaves are preferable
// when nothing distinguishes them — but an actively harmful pairing
// (negative benefit) leaves e a singleton.
func (p *Planner) bestPartnerByBenefit(q *query.Graph, e query.EdgeID, unused map[query.EdgeID]bool) (query.EdgeID, bool) {
	qe := q.Edge(e)
	eCost := p.estimate(q, []query.EdgeID{e})
	best := query.EdgeID(-1)
	bestBenefit := 0.0
	for _, cand := range q.EdgeIDs() {
		if !unused[cand] || cand == e {
			continue
		}
		ce := q.Edge(cand)
		if !sharesVertex(qe, ce) {
			continue
		}
		benefit := eCost + p.estimate(q, []query.EdgeID{cand}) - p.estimate(q, []query.EdgeID{e, cand})
		if best == -1 {
			if benefit >= 0 {
				best, bestBenefit = cand, benefit
			}
			continue
		}
		if benefit > bestBenefit {
			best, bestBenefit = cand, benefit
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

// bestPartner picks the unused edge adjacent to e that minimizes the
// estimated cardinality of the resulting wedge (or simply the first adjacent
// edge when no estimator is available).
func (p *Planner) bestPartner(q *query.Graph, e query.EdgeID, unused map[query.EdgeID]bool) (query.EdgeID, bool) {
	qe := q.Edge(e)
	best := query.EdgeID(-1)
	bestCost := 0.0
	for _, cand := range q.EdgeIDs() {
		if !unused[cand] || cand == e {
			continue
		}
		ce := q.Edge(cand)
		if !sharesVertex(qe, ce) {
			continue
		}
		cost := p.estimate(q, []query.EdgeID{e, cand})
		if best == -1 || cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

func sharesVertex(a, b *query.Edge) bool {
	return a.Source == b.Source || a.Source == b.Target || a.Target == b.Source || a.Target == b.Target
}

// leftDeep builds a left-deep join tree over the primitives. When ranked is
// true the primitives are ordered by ascending estimated cardinality before
// chaining (most selective lowest); either way each newly joined primitive
// must share a pattern vertex with the already-covered subgraph so every
// internal node's subgraph stays connected.
func (p *Planner) leftDeep(q *query.Graph, prims [][]query.EdgeID, ranked bool) *Node {
	if len(prims) == 0 {
		return nil
	}
	order := make([]int, len(prims))
	for i := range order {
		order[i] = i
	}
	if ranked {
		sort.SliceStable(order, func(i, j int) bool {
			return p.estimate(q, prims[order[i]]) < p.estimate(q, prims[order[j]])
		})
	}
	used := make([]bool, len(prims))
	covered := make(map[query.VertexID]struct{})
	// Start with the first primitive in the chosen order.
	cur := newLeaf(prims[order[0]])
	used[order[0]] = true
	markCovered(q, covered, cur.Edges)

	for remaining := len(prims) - 1; remaining > 0; remaining-- {
		next := -1
		for _, idx := range order {
			if used[idx] {
				continue
			}
			if touchesCovered(q, covered, prims[idx]) {
				next = idx
				break
			}
		}
		if next == -1 {
			// The query graph is connected, so some unused primitive must
			// touch the covered region; fall back to the first unused to
			// avoid an infinite loop on pathological inputs.
			for _, idx := range order {
				if !used[idx] {
					next = idx
					break
				}
			}
		}
		leaf := newLeaf(prims[next])
		cur = newJoin(q, cur, leaf)
		used[next] = true
		markCovered(q, covered, leaf.Edges)
	}
	return cur
}

func markCovered(q *query.Graph, covered map[query.VertexID]struct{}, edges []query.EdgeID) {
	for _, v := range q.EndpointsOf(edges) {
		covered[v] = struct{}{}
	}
}

func touchesCovered(q *query.Graph, covered map[query.VertexID]struct{}, edges []query.EdgeID) bool {
	for _, v := range q.EndpointsOf(edges) {
		if _, ok := covered[v]; ok {
			return true
		}
	}
	return false
}

// balanced recursively splits the edge set into two connected halves. When a
// connected split cannot be found the subset is handled by the selective
// left-deep construction instead.
func (p *Planner) balanced(q *query.Graph, edges []query.EdgeID) *Node {
	if len(edges) <= p.maxLeafEdges && q.SubsetConnected(edges) {
		return newLeaf(edges)
	}
	left, right, ok := p.connectedSplit(q, edges)
	if !ok {
		return p.leftDeep(q, p.subsetPrimitives(q, edges), true)
	}
	return newJoin(q, p.balanced(q, left), p.balanced(q, right))
}

// connectedSplit grows a connected half of roughly half the edges (in
// breadth-first edge order) and checks that the remainder is connected too.
func (p *Planner) connectedSplit(q *query.Graph, edges []query.EdgeID) (left, right []query.EdgeID, ok bool) {
	if len(edges) < 2 {
		return nil, nil, false
	}
	target := len(edges) / 2
	if target == 0 {
		target = 1
	}
	inSet := make(map[query.EdgeID]bool, len(edges))
	for _, e := range edges {
		inSet[e] = true
	}
	// Grow from the first edge.
	grown := []query.EdgeID{edges[0]}
	taken := map[query.EdgeID]bool{edges[0]: true}
	covered := make(map[query.VertexID]struct{})
	markCovered(q, covered, grown)
	for len(grown) < target {
		progressed := false
		for _, e := range edges {
			if taken[e] || !inSet[e] {
				continue
			}
			if touchesCovered(q, covered, []query.EdgeID{e}) {
				grown = append(grown, e)
				taken[e] = true
				markCovered(q, covered, []query.EdgeID{e})
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}
	var rest []query.EdgeID
	for _, e := range edges {
		if !taken[e] {
			rest = append(rest, e)
		}
	}
	if len(grown) == 0 || len(rest) == 0 {
		return nil, nil, false
	}
	if !q.SubsetConnected(grown) || !q.SubsetConnected(rest) {
		return nil, nil, false
	}
	return grown, rest, true
}

// subsetPrimitives is primitives() restricted to a subset of the query edges.
func (p *Planner) subsetPrimitives(q *query.Graph, edges []query.EdgeID) [][]query.EdgeID {
	unused := make(map[query.EdgeID]bool, len(edges))
	for _, e := range edges {
		unused[e] = true
	}
	var prims [][]query.EdgeID
	for _, e := range edges {
		if !unused[e] {
			continue
		}
		prim := []query.EdgeID{e}
		unused[e] = false
		if p.maxLeafEdges >= 2 {
			if partner, ok := p.bestPartner(q, e, unused); ok {
				prim = append(prim, partner)
				unused[partner] = false
			}
		}
		prims = append(prims, prim)
	}
	return prims
}

// estimate returns the estimated cardinality of the subgraph, falling back
// to a structural heuristic (edge count, discounted per predicate and typed
// endpoint) when no estimator is available.
func (p *Planner) estimate(q *query.Graph, edges []query.EdgeID) float64 {
	if p.est != nil {
		return p.est.SubgraphCardinality(q, edges)
	}
	cost := 0.0
	for _, eid := range edges {
		e := q.Edge(eid)
		c := 1000.0
		if e.Type != "" {
			c /= 4
		}
		c *= structuralDiscount(len(e.Preds))
		for _, vid := range []query.VertexID{e.Source, e.Target} {
			v := q.Vertex(vid)
			if v.Type != "" {
				c *= 0.5
			}
			c *= structuralDiscount(len(v.Preds))
		}
		cost += c
	}
	return cost
}

func structuralDiscount(preds int) float64 {
	f := 1.0
	for i := 0; i < preds; i++ {
		f *= stats.DefaultPredicateSelectivity
	}
	return f
}
