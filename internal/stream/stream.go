// Package stream provides the edge-stream substrate the continuous engine
// consumes: sources that yield timestamped stream edges, batching by count
// or by time step, and replay helpers. Workload generators
// (internal/gen) and file loaders (internal/loader) produce Sources; the
// engine and the baselines consume them.
package stream

import (
	"errors"
	"io"
	"sort"

	"github.com/streamworks/streamworks/internal/graph"
)

// Source yields stream edges in arrival order. Next returns io.EOF when the
// stream is exhausted. Implementations need not be safe for concurrent use.
type Source interface {
	Next() (graph.StreamEdge, error)
}

// ErrStopped is returned by replay helpers when the consumer callback asks
// to stop early.
var ErrStopped = errors.New("stream: stopped by consumer")

// SliceSource replays a fixed slice of stream edges.
type SliceSource struct {
	edges []graph.StreamEdge
	pos   int
}

// NewSliceSource builds a source over the given edges. The slice is not
// copied; callers must not mutate it while the source is in use.
func NewSliceSource(edges []graph.StreamEdge) *SliceSource {
	return &SliceSource{edges: edges}
}

// Next implements Source.
func (s *SliceSource) Next() (graph.StreamEdge, error) {
	if s.pos >= len(s.edges) {
		return graph.StreamEdge{}, io.EOF
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// Reset rewinds the source to the beginning, allowing a second replay.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of edges in the source.
func (s *SliceSource) Len() int { return len(s.edges) }

// ChannelSource adapts a channel of stream edges into a Source. The channel
// being closed signals end of stream.
type ChannelSource struct {
	ch <-chan graph.StreamEdge
}

// NewChannelSource wraps ch as a Source.
func NewChannelSource(ch <-chan graph.StreamEdge) *ChannelSource {
	return &ChannelSource{ch: ch}
}

// Next implements Source.
func (s *ChannelSource) Next() (graph.StreamEdge, error) {
	e, ok := <-s.ch
	if !ok {
		return graph.StreamEdge{}, io.EOF
	}
	return e, nil
}

// FuncSource adapts a generator function into a Source.
type FuncSource func() (graph.StreamEdge, error)

// Next implements Source.
func (f FuncSource) Next() (graph.StreamEdge, error) { return f() }

// Replay drains the source, invoking fn for each edge. fn returning false
// stops the replay with ErrStopped. It returns the number of edges consumed.
func Replay(src Source, fn func(graph.StreamEdge) bool) (int, error) {
	count := 0
	for {
		e, err := src.Next()
		if errors.Is(err, io.EOF) {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count++
		if !fn(e) {
			return count, ErrStopped
		}
	}
}

// Collect drains the source into a slice (for tests and small datasets).
func Collect(src Source) ([]graph.StreamEdge, error) {
	var out []graph.StreamEdge
	_, err := Replay(src, func(e graph.StreamEdge) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// SortByTimestamp orders the edges by timestamp (stable on ties, preserving
// generation order) so that generators composing several event sources can
// emit a single time-ordered stream.
func SortByTimestamp(edges []graph.StreamEdge) {
	sort.SliceStable(edges, func(i, j int) bool {
		return edges[i].Edge.Timestamp < edges[j].Edge.Timestamp
	})
}

// Merge combines multiple already-sorted edge slices into one time-ordered
// slice with a true k-way merge (O(n log k) for n total edges across k
// streams, instead of re-sorting the concatenation in O(n log n)). Ties keep
// the order of the argument list, then generation order within each slice,
// matching what SortByTimestamp over the concatenation produced.
func Merge(streams ...[]graph.StreamEdge) []graph.StreamEdge {
	total := 0
	srcs := make([]Source, len(streams))
	for i, s := range streams {
		total += len(s)
		srcs[i] = NewSliceSource(s)
	}
	out := make([]graph.StreamEdge, 0, total)
	fi := FanIn(srcs...)
	for {
		se, err := fi.Next()
		if err != nil {
			// SliceSources only ever fail with io.EOF.
			return out
		}
		out = append(out, se)
	}
}
