package stream

import (
	"container/heap"
	"errors"
	"io"

	"github.com/streamworks/streamworks/internal/graph"
)

// fanInHead is one source's frontier inside the merge heap: the next edge the
// source will deliver plus the source itself.
type fanInHead struct {
	se  graph.StreamEdge
	src Source
	idx int // position in the FanIn argument list, used for stable ties
}

// fanInHeap orders heads by timestamp, breaking ties by source index so the
// merged order is stable: on equal timestamps, edges from earlier sources come
// first, and edges within one source keep their generation order (they are
// pulled sequentially).
type fanInHeap []fanInHead

func (h fanInHeap) Len() int { return len(h) }
func (h fanInHeap) Less(i, j int) bool {
	if h[i].se.Edge.Timestamp != h[j].se.Edge.Timestamp {
		return h[i].se.Edge.Timestamp < h[j].se.Edge.Timestamp
	}
	return h[i].idx < h[j].idx
}
func (h fanInHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fanInHeap) Push(x any)   { *h = append(*h, x.(fanInHead)) }
func (h *fanInHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// fanIn is the k-way merging Source returned by FanIn.
type fanIn struct {
	srcs    []Source
	h       fanInHeap
	started bool
	err     error
}

// FanIn merges multiple time-ordered sources into a single time-ordered
// source using a k-way heap merge: each Next is O(log k) in the number of
// live inputs and only one edge per input is buffered. Ties are broken by
// argument position (edges from earlier sources first), matching the
// stability guarantee of SortByTimestamp over the concatenation. A non-EOF
// error from any input fails the merged stream on the next call.
func FanIn(srcs ...Source) Source {
	return &fanIn{srcs: srcs}
}

// Next implements Source.
func (f *fanIn) Next() (graph.StreamEdge, error) {
	if f.err != nil {
		return graph.StreamEdge{}, f.err
	}
	if !f.started {
		f.started = true
		f.h = make(fanInHeap, 0, len(f.srcs))
		for i, src := range f.srcs {
			if err := f.refill(src, i); err != nil {
				f.err = err
				return graph.StreamEdge{}, err
			}
		}
		heap.Init(&f.h)
	}
	if len(f.h) == 0 {
		return graph.StreamEdge{}, io.EOF
	}
	head := f.h[0]
	next, err := head.src.Next()
	switch {
	case errors.Is(err, io.EOF):
		heap.Pop(&f.h)
	case err != nil:
		// The buffered head edge was read successfully before the source
		// failed: deliver it now and surface the error on the next call.
		heap.Pop(&f.h)
		f.err = err
	default:
		f.h[0].se = next
		heap.Fix(&f.h, 0)
	}
	return head.se, nil
}

// refill reads the first edge of src into the (not yet heapified) frontier.
func (f *fanIn) refill(src Source, idx int) error {
	se, err := src.Next()
	if errors.Is(err, io.EOF) {
		return nil
	}
	if err != nil {
		return err
	}
	f.h = append(f.h, fanInHead{se: se, src: src, idx: idx})
	return nil
}

// FanOut splits src into n channel-backed sources: a pump goroutine drains
// src and forwards each edge to the outputs selected by route (duplicate and
// out-of-range indexes are ignored; an empty selection drops the edge). All
// outputs are closed when src is exhausted or fails. The returned wait
// function blocks until the pump finishes and reports its error; it may be
// called multiple times. Consumers must drain their sources (or run
// concurrently) for the pump to make progress — the channels carry buffer
// edges of slack each.
func FanOut(src Source, n, buffer int, route func(graph.StreamEdge) []int) ([]Source, func() error) {
	if buffer < 0 {
		buffer = 0
	}
	chans := make([]chan graph.StreamEdge, n)
	outs := make([]Source, n)
	for i := range chans {
		chans[i] = make(chan graph.StreamEdge, buffer)
		outs[i] = NewChannelSource(chans[i])
	}
	var (
		pumpErr error
		done    = make(chan struct{})
	)
	go func() {
		defer func() {
			for _, ch := range chans {
				close(ch)
			}
			close(done)
		}()
		_, pumpErr = Replay(src, func(se graph.StreamEdge) bool {
			dests := route(se)
			for i, d := range dests {
				if d < 0 || d >= n || contains(dests[:i], d) {
					continue
				}
				chans[d] <- se
			}
			return true
		})
	}()
	wait := func() error {
		<-done
		return pumpErr
	}
	return outs, wait
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
