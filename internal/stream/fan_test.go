package stream

import (
	"errors"
	"io"
	"math/rand"
	"sort"
	"testing"

	"github.com/streamworks/streamworks/internal/graph"
)

func TestFanInMergesSortedSources(t *testing.T) {
	a := makeEdges(4, 100, 10) // 100,110,120,130
	b := makeEdges(3, 95, 10)  // 95,105,115
	var c []graph.StreamEdge   // empty stream must be harmless
	fi := FanIn(NewSliceSource(a), NewSliceSource(b), NewSliceSource(c))
	got, err := Collect(fi)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got) != 7 {
		t.Fatalf("merged %d edges, want 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Edge.Timestamp > got[i].Edge.Timestamp {
			t.Fatalf("not time ordered at %d: %v", i, got)
		}
	}
	if _, err := fi.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted FanIn: %v", err)
	}
}

func TestFanInStableTies(t *testing.T) {
	a := []graph.StreamEdge{
		{Edge: graph.Edge{ID: 1, Timestamp: 5}},
		{Edge: graph.Edge{ID: 2, Timestamp: 5}},
	}
	b := []graph.StreamEdge{
		{Edge: graph.Edge{ID: 3, Timestamp: 5}},
	}
	got := Merge(a, b)
	want := []graph.EdgeID{1, 2, 3}
	for i, id := range want {
		if got[i].Edge.ID != id {
			t.Fatalf("tie order = %v %v %v, want 1 2 3", got[0].Edge.ID, got[1].Edge.ID, got[2].Edge.ID)
		}
	}
}

func TestFanInPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := FuncSource(func() (graph.StreamEdge, error) { return graph.StreamEdge{}, boom })
	fi := FanIn(NewSliceSource(makeEdges(2, 0, 1)), bad)
	if _, err := fi.Next(); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// The failure is sticky.
	if _, err := fi.Next(); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestFanInDeliversBufferedEdgeBeforeError(t *testing.T) {
	// A source that fails after yielding one edge: the edge it delivered
	// must come through before the failure surfaces.
	boom := errors.New("boom")
	one := makeEdges(1, 5, 1)
	calls := 0
	flaky := FuncSource(func() (graph.StreamEdge, error) {
		calls++
		if calls == 1 {
			return one[0], nil
		}
		return graph.StreamEdge{}, boom
	})
	fi := FanIn(flaky)
	se, err := fi.Next()
	if err != nil || se.Edge.ID != one[0].Edge.ID {
		t.Fatalf("buffered edge lost: %v, %v", se, err)
	}
	if _, err := fi.Next(); !errors.Is(err, boom) {
		t.Fatalf("deferred error not surfaced: %v", err)
	}
}

func TestMergeMatchesSortOnRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var streams [][]graph.StreamEdge
	var all []graph.StreamEdge
	id := graph.EdgeID(1)
	for s := 0; s < 5; s++ {
		n := rng.Intn(50)
		edges := make([]graph.StreamEdge, n)
		ts := graph.Timestamp(rng.Intn(100))
		for i := range edges {
			ts += graph.Timestamp(rng.Intn(5)) // non-decreasing, with ties
			edges[i] = graph.StreamEdge{Edge: graph.Edge{ID: id, Timestamp: ts}}
			id++
		}
		streams = append(streams, edges)
		all = append(all, edges...)
	}
	want := append([]graph.StreamEdge(nil), all...)
	SortByTimestamp(want)
	got := Merge(streams...)
	if len(got) != len(want) {
		t.Fatalf("merged %d edges, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		return got[i].Edge.Timestamp < got[j].Edge.Timestamp
	}) {
		t.Fatalf("merge output not sorted")
	}
	for i := range got {
		if got[i].Edge.Timestamp != want[i].Edge.Timestamp {
			t.Fatalf("merge diverges from stable sort at %d", i)
		}
	}
}

func TestFanOutRoutesAndCloses(t *testing.T) {
	edges := makeEdges(20, 0, 1)
	outs, wait := FanOut(NewSliceSource(edges), 3, 4, func(se graph.StreamEdge) []int {
		switch {
		case se.Edge.ID%5 == 0:
			return []int{0, 1, 2, 2, -1, 99} // duplicates and junk ignored
		case se.Edge.ID%2 == 0:
			return []int{0, 1}
		default:
			return []int{int(se.Edge.ID) % 3}
		}
	})
	type res struct {
		edges []graph.StreamEdge
		err   error
	}
	results := make([]res, len(outs))
	done := make(chan int, len(outs))
	for i, src := range outs {
		go func(i int, src Source) {
			es, err := Collect(src)
			results[i] = res{es, err}
			done <- i
		}(i, src)
	}
	for range outs {
		<-done
	}
	if err := wait(); err != nil {
		t.Fatalf("pump error: %v", err)
	}
	counts := map[graph.EdgeID]int{}
	total := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("consumer %d: %v", i, r.err)
		}
		total += len(r.edges)
		for _, se := range r.edges {
			counts[se.Edge.ID]++
		}
	}
	for _, se := range edges {
		id := se.Edge.ID
		want := 1
		if id%5 == 0 {
			want = 3
		} else if id%2 == 0 {
			want = 2
		}
		if counts[id] != want {
			t.Fatalf("edge %d delivered %d times, want %d", id, counts[id], want)
		}
	}
	// 4 multiples of 5 delivered thrice, 8 other evens twice, 8 odds once.
	if total != 4*3+8*2+8 {
		t.Fatalf("total deliveries = %d, want 36", total)
	}
}

func BenchmarkMerge(b *testing.B) {
	const k = 8
	const per = 20_000
	streams := make([][]graph.StreamEdge, k)
	for s := range streams {
		streams[s] = makeEdges(per, graph.Timestamp(s), k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Merge(streams...)
		if len(out) != k*per {
			b.Fatalf("merged %d", len(out))
		}
	}
}
