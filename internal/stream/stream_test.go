package stream

import (
	"errors"
	"io"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

func makeEdges(n int, startTS graph.Timestamp, step graph.Timestamp) []graph.StreamEdge {
	out := make([]graph.StreamEdge, n)
	for i := range out {
		out[i] = graph.StreamEdge{
			Edge: graph.Edge{
				ID:        graph.EdgeID(i + 1),
				Source:    graph.VertexID(i),
				Target:    graph.VertexID(i + 1),
				Type:      "flow",
				Timestamp: startTS + graph.Timestamp(i)*step,
			},
			SourceType: "Host",
			TargetType: "Host",
		}
	}
	return out
}

func TestSliceSource(t *testing.T) {
	edges := makeEdges(3, 0, 10)
	src := NewSliceSource(edges)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	var got []graph.EdgeID
	for {
		e, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Edge.ID)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	// Exhausted source keeps returning EOF.
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after exhaustion")
	}
	src.Reset()
	if e, err := src.Next(); err != nil || e.Edge.ID != 1 {
		t.Fatalf("Reset did not rewind")
	}
}

func TestChannelSource(t *testing.T) {
	ch := make(chan graph.StreamEdge, 2)
	ch <- makeEdges(1, 0, 1)[0]
	close(ch)
	src := NewChannelSource(ch)
	if e, err := src.Next(); err != nil || e.Edge.ID != 1 {
		t.Fatalf("Next = %v, %v", e, err)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("closed channel should yield EOF")
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (graph.StreamEdge, error) {
		if n >= 2 {
			return graph.StreamEdge{}, io.EOF
		}
		n++
		return graph.StreamEdge{Edge: graph.Edge{ID: graph.EdgeID(n)}}, nil
	})
	got, err := Collect(src)
	if err != nil || len(got) != 2 {
		t.Fatalf("Collect = %v, %v", got, err)
	}
}

func TestReplayEarlyStop(t *testing.T) {
	src := NewSliceSource(makeEdges(10, 0, 1))
	n, err := Replay(src, func(e graph.StreamEdge) bool {
		return e.Edge.ID < 3
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
	if n != 3 {
		t.Fatalf("consumed %d edges, want 3", n)
	}
}

func TestReplayPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	src := FuncSource(func() (graph.StreamEdge, error) { return graph.StreamEdge{}, boom })
	if _, err := Replay(src, func(graph.StreamEdge) bool { return true }); !errors.Is(err, boom) {
		t.Fatalf("source error not propagated: %v", err)
	}
}

func TestSortAndMerge(t *testing.T) {
	a := makeEdges(3, 100, 10) // ts 100,110,120
	b := makeEdges(3, 95, 10)  // ts 95,105,115
	merged := Merge(a, b)
	if len(merged) != 6 {
		t.Fatalf("merged length %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Edge.Timestamp > merged[i].Edge.Timestamp {
			t.Fatalf("merge not time ordered: %v", merged)
		}
	}
	// Stable: equal timestamps keep original relative order.
	c := []graph.StreamEdge{
		{Edge: graph.Edge{ID: 1, Timestamp: 5}},
		{Edge: graph.Edge{ID: 2, Timestamp: 5}},
	}
	SortByTimestamp(c)
	if c[0].Edge.ID != 1 {
		t.Fatalf("sort not stable")
	}
}

func TestCountBatcher(t *testing.T) {
	src := NewSliceSource(makeEdges(7, 0, 1))
	b := NewCountBatcher(src, 3)
	var sizes []int
	n, err := ReplayBatches(b, func(batch Batch) bool {
		sizes = append(sizes, len(batch.Edges))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v", sizes)
	}
	if _, err := b.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after final batch")
	}
}

func TestCountBatcherMinimumSize(t *testing.T) {
	src := NewSliceSource(makeEdges(2, 0, 1))
	b := NewCountBatcher(src, 0) // clamped to 1
	n, err := ReplayBatches(b, func(batch Batch) bool { return len(batch.Edges) == 1 })
	if err != nil || n != 2 {
		t.Fatalf("clamped batcher misbehaved: %d, %v", n, err)
	}
}

func TestTimeBatcher(t *testing.T) {
	// Edges at t=0,10,20,...,90ns; 25ns batches → [0,10,20], [30,40,50], ...
	src := NewSliceSource(makeEdges(10, 0, 10))
	b := NewTimeBatcher(src, 25*time.Nanosecond)
	var sizes []int
	var seqs []int
	_, err := ReplayBatches(b, func(batch Batch) bool {
		sizes = append(sizes, len(batch.Edges))
		seqs = append(seqs, batch.Seq)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("expected 4 time batches, got %v", sizes)
	}
	for i, s := range sizes {
		want := 3
		if i == len(sizes)-1 {
			want = 1
		}
		if s != want {
			t.Fatalf("batch %d has %d edges, want %d (%v)", i, s, want, sizes)
		}
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("batch sequence numbers wrong: %v", seqs)
		}
	}
}

func TestBatchSpan(t *testing.T) {
	var empty Batch
	if empty.Span().Span() != 0 {
		t.Fatalf("empty batch should have zero span")
	}
	b := Batch{Edges: makeEdges(3, 100, 10)}
	iv := b.Span()
	if iv.Start != 100 || iv.End != 120 {
		t.Fatalf("Span = %v", iv)
	}
}

func TestReplayBatchesEarlyStop(t *testing.T) {
	src := NewSliceSource(makeEdges(10, 0, 1))
	b := NewCountBatcher(src, 2)
	n, err := ReplayBatches(b, func(batch Batch) bool { return batch.Seq == 0 })
	if !errors.Is(err, ErrStopped) || n != 2 {
		t.Fatalf("early stop wrong: %d, %v", n, err)
	}
}

func TestTimeBatcherInvalidSpan(t *testing.T) {
	src := NewSliceSource(makeEdges(2, 0, 1))
	b := NewTimeBatcher(src, 0)
	n, err := ReplayBatches(b, func(Batch) bool { return true })
	if err != nil || n == 0 {
		t.Fatalf("zero-span batcher should still deliver edges: %d %v", n, err)
	}
}
