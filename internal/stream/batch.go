package stream

import (
	"errors"
	"io"
	"time"

	"github.com/streamworks/streamworks/internal/graph"
)

// Batch is a group of stream edges delivered together, corresponding to one
// time step E(k+1) in the paper's formulation: the incremental result of a
// continuous query is defined per batch of newly arrived edges.
type Batch struct {
	// Seq is the 0-based batch sequence number.
	Seq int
	// Edges are the batch members in arrival order.
	Edges []graph.StreamEdge
}

// Span returns the interval covered by the batch's edge timestamps.
func (b Batch) Span() graph.Interval {
	if len(b.Edges) == 0 {
		return graph.Interval{}
	}
	iv := graph.NewInterval(b.Edges[0].Edge.Timestamp)
	for _, e := range b.Edges[1:] {
		iv = iv.Extend(e.Edge.Timestamp)
	}
	return iv
}

// Batcher groups a Source into Batches either by a fixed number of edges or
// by a fixed time width (whichever is configured; count takes precedence
// when both are set and either boundary closes the batch).
type Batcher struct {
	src      Source
	maxCount int
	maxSpan  time.Duration
	pending  *graph.StreamEdge
	seq      int
	done     bool
}

// NewCountBatcher groups edges into batches of exactly n edges (the final
// batch may be smaller).
func NewCountBatcher(src Source, n int) *Batcher {
	if n < 1 {
		n = 1
	}
	return &Batcher{src: src, maxCount: n}
}

// NewTimeBatcher groups edges into batches covering at most span of stream
// time: a batch is closed when the next edge's timestamp is at least span
// beyond the batch's first edge.
func NewTimeBatcher(src Source, span time.Duration) *Batcher {
	if span <= 0 {
		span = time.Nanosecond
	}
	return &Batcher{src: src, maxSpan: span}
}

// Next returns the next batch, or io.EOF after the final one.
func (b *Batcher) Next() (Batch, error) {
	if b.done && b.pending == nil {
		return Batch{}, io.EOF
	}
	batch := Batch{Seq: b.seq}
	var first graph.Timestamp
	haveFirst := false

	appendEdge := func(e graph.StreamEdge) {
		if !haveFirst {
			first = e.Edge.Timestamp
			haveFirst = true
		}
		batch.Edges = append(batch.Edges, e)
	}
	if b.pending != nil {
		appendEdge(*b.pending)
		b.pending = nil
	}
	for {
		if b.maxCount > 0 && len(batch.Edges) >= b.maxCount {
			break
		}
		e, err := b.src.Next()
		if errors.Is(err, io.EOF) {
			b.done = true
			break
		}
		if err != nil {
			return Batch{}, err
		}
		if b.maxSpan > 0 && haveFirst && e.Edge.Timestamp.Sub(first) >= b.maxSpan {
			// The edge belongs to the next batch.
			pe := e
			b.pending = &pe
			break
		}
		appendEdge(e)
	}
	if len(batch.Edges) == 0 {
		return Batch{}, io.EOF
	}
	b.seq++
	return batch, nil
}

// ReplayBatches drains the batcher, invoking fn for each batch. fn returning
// false stops early with ErrStopped. It returns the number of batches
// delivered.
func ReplayBatches(b *Batcher, fn func(Batch) bool) (int, error) {
	count := 0
	for {
		batch, err := b.Next()
		if errors.Is(err, io.EOF) {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count++
		if !fn(batch) {
			return count, ErrStopped
		}
	}
}
