package obs

import "sync"

// Trace stage names, in journey order. One sampled edge produces up to one
// event per stage per tier it crosses; matches and deliveries reference the
// edge that triggered them.
const (
	// StageIngest: the server runner dequeued the edge's batch from the
	// ingest queue (DurNS = queue wait).
	StageIngest = "ingest"
	// StageMailbox: a shard worker dequeued the edge from its mailbox
	// (DurNS = mailbox wait, Shard = worker index).
	StageMailbox = "mailbox"
	// StageProcess: the core engine finished processing the edge
	// (DurNS = local search + SJ-tree join time for that edge).
	StageProcess = "process"
	// StageMatch: processing the edge completed a match (Query set,
	// StreamTS = DetectedAt watermark).
	StageMatch = "match"
	// StageDeliver: a subscriber write for a match bound to the edge
	// finished flushing (DurNS = encode+flush time).
	StageDeliver = "deliver"
)

// TraceEvent is one sampled edge-journey event. By design it carries only
// scalar and string fields — never slices, maps or pointers — so recording
// an event can never retain scratch-backed ProcessEdge state (the swvet
// obsescape pass enforces this shape).
//
//swvet:traceevent
type TraceEvent struct {
	// Seq is the tracer-assigned global sequence number (1-based).
	Seq uint64 `json:"seq"`
	// WallNS is the wall-clock nanosecond timestamp of the event.
	WallNS int64 `json:"wall_ns"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Shard is the engine's shard worker index (zero for a standalone
	// engine), or -1 for tier-level events outside any engine.
	Shard int32 `json:"shard"`
	// EdgeID is the stream edge the event belongs to.
	EdgeID uint64 `json:"edge_id"`
	// StreamTS is the edge (or detection) stream timestamp in nanoseconds.
	StreamTS int64 `json:"stream_ts"`
	// DurNS is the stage duration in nanoseconds, when the stage has one.
	DurNS int64 `json:"dur_ns"`
	// Query is the query name for match/deliver events.
	Query string `json:"query,omitempty"`
}

// Tracer samples edge-journey events into a fixed ring buffer. Sampling is
// deterministic on the edge ID (one edge in sampleEvery), so every tier
// independently selects the same edges and a journey can be stitched from
// the dump without threading trace context through the engine. A per-second
// recording cap bounds the cost under bursts. A nil *Tracer is valid and
// disabled: SampleEdge returns false before any event is even constructed,
// which is what makes the disabled path allocation-free.
type Tracer struct {
	sampleEvery uint64
	perSec      int64
	clock       Clock

	mu       sync.Mutex
	ring     []TraceEvent
	seq      uint64
	dropped  uint64
	curSec   int64
	inSecond int64
}

// NewTracer builds a tracer holding the last capacity events, sampling one
// edge in sampleEvery with at most perSec events recorded per wall second
// (0 means the 1000 default). It returns nil — a disabled tracer — when
// capacity or sampleEvery is not positive.
func NewTracer(capacity, sampleEvery, perSec int, clock Clock) *Tracer {
	if capacity <= 0 || sampleEvery <= 0 {
		return nil
	}
	if perSec <= 0 {
		perSec = 1000
	}
	if clock == nil {
		clock = SystemClock
	}
	return &Tracer{
		sampleEvery: uint64(sampleEvery),
		perSec:      int64(perSec),
		clock:       clock,
		ring:        make([]TraceEvent, capacity),
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SampleEdge reports whether events for this edge should be recorded. It is
// the hot-path gate: one modulo when tracing is on, one nil check when off.
func (t *Tracer) SampleEdge(id uint64) bool {
	if t == nil {
		return false
	}
	return id%t.sampleEvery == 0
}

// Record appends one event to the ring, stamping WallNS (if zero) and Seq.
// Events beyond the per-second cap are counted as dropped instead of
// recorded, so a burst cannot turn the tracer into the bottleneck it is
// meant to find.
func (t *Tracer) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.WallNS == 0 {
		ev.WallNS = t.clock.Now()
	}
	t.mu.Lock()
	sec := ev.WallNS / int64(1e9)
	if sec != t.curSec {
		t.curSec, t.inSecond = sec, 0
	}
	if t.inSecond >= t.perSec {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.inSecond++
	t.seq++
	ev.Seq = t.seq
	t.ring[(t.seq-1)%uint64(len(t.ring))] = ev
	t.mu.Unlock()
}

// Dump copies the buffered events out, oldest first.
func (t *Tracer) Dump() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	cap64 := uint64(len(t.ring))
	if n > cap64 {
		n = cap64
	}
	out := make([]TraceEvent, 0, n)
	start := t.seq - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.ring[(start+i)%cap64])
	}
	return out
}

// Stats returns the cumulative recorded and dropped event counts.
func (t *Tracer) Stats() (recorded, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq, t.dropped
}
