package obs

import (
	"os"
	"strings"
	"testing"
)

func TestPromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("edges_processed", "", "").Add(12345)
	r.Counter("trace_events", "stage", "ingest").Add(7)
	seg := r.Segment(SegLocalSearch)
	for i := 0; i < 100; i++ {
		seg.Observe(1500)
	}
	r.Segment(SegSJTreeJoin).Observe(3_000_000)

	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Snapshot(r.Snapshot())
	pw.Gauge("live_edges", "", "", 42)
	if err := pw.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE streamworks_edges_processed_total counter",
		"streamworks_edges_processed_total 12345",
		`streamworks_trace_events_total{stage="ingest"} 7`,
		"# TYPE streamworks_segment_latency_seconds histogram",
		`streamworks_segment_latency_seconds_bucket{segment="local_search",le="+Inf"} 100`,
		`streamworks_segment_latency_seconds_count{segment="local_search"} 100`,
		`streamworks_segment_latency_seconds_count{segment="sjtree_join"} 1`,
		"streamworks_live_edges 42",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition did not parse: %v\n%s", err, text)
	}
	byseries := map[string]float64{}
	for _, s := range samples {
		byseries[s.Series()] = s.Value
	}
	if byseries["streamworks_edges_processed_total"] != 12345 {
		t.Fatalf("parsed counter = %v", byseries["streamworks_edges_processed_total"])
	}
	if byseries[`streamworks_segment_latency_seconds_count{segment="local_search"}`] != 100 {
		t.Fatalf("parsed histogram count missing: %v", byseries)
	}
	// sum of 100×1500ns = 150µs = 1.5e-4 s
	if got := byseries[`streamworks_segment_latency_seconds_sum{segment="local_search"}`]; got < 1.4e-4 || got > 1.6e-4 {
		t.Fatalf("histogram sum in seconds = %v", got)
	}
	// Buckets must be cumulative and monotone.
	prev := -1.0
	for _, s := range samples {
		if s.Name != "streamworks_segment_latency_seconds_bucket" || s.Labels["segment"] != "local_search" {
			continue
		}
		if s.Value < prev {
			t.Fatalf("bucket counts not monotone: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"1leading_digit 3",
		`unterminated{label="x 3`,
		`bad_value{a="b"} notafloat`,
		`missing_quote{a=b} 3`,
		"name 1 2 3",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseProm accepted %q", bad)
		}
	}
	// Comments, blank lines and timestamps are fine.
	ok := "# HELP x y\n# TYPE x counter\n\nx_total 5 1700000000000\n"
	samples, err := ParseProm(strings.NewReader(ok))
	if err != nil || len(samples) != 1 || samples[0].Value != 5 {
		t.Fatalf("ParseProm(%q) = %v, %v", ok, samples, err)
	}
}

// TestPromScrapeFile validates an externally captured /metrics scrape when
// PROM_SCRAPE_FILE is set; CI's obs-smoke job points it at the live daemon's
// output so a malformed exposition fails visibly instead of at some future
// Prometheus deployment.
func TestPromScrapeFile(t *testing.T) {
	path := os.Getenv("PROM_SCRAPE_FILE")
	if path == "" {
		t.Skip("PROM_SCRAPE_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open scrape: %v", err)
	}
	defer f.Close()
	samples, err := ParseProm(f)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatalf("scrape contained no samples")
	}
	found := false
	for _, s := range samples {
		if strings.HasPrefix(s.Name, PromPrefix) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("scrape has no %s* series", PromPrefix)
	}
	t.Logf("scrape OK: %d samples", len(samples))
}
