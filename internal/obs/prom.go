package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition for registry snapshots,
// written by hand so the repo stays dependency-free. Metric families are
// prefixed "streamworks_"; histogram values are exposed in seconds (the
// Prometheus convention) while the JSON side stays in nanoseconds.

// PromPrefix is prepended to every exposed metric family name.
const PromPrefix = "streamworks_"

// PromWriter accumulates Prometheus text-format output. Errors are sticky:
// check Err once after the last write.
type PromWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the # TYPE line once per family.
func (p *PromWriter) header(family, typ, help string) {
	if p.typed[family] {
		return
	}
	p.typed[family] = true
	if help != "" {
		p.printf("# HELP %s %s\n", family, help)
	}
	p.printf("# TYPE %s %s\n", family, typ)
}

// sanitize maps an internal metric name to a legal Prometheus name.
func sanitize(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func labelSuffix(key, value string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", sanitize(key), escapeLabel(value))
}

func labelWith(key, value, extraKey, extraValue string) string {
	parts := make([]string, 0, 2)
	if key != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitize(key), escapeLabel(value)))
	}
	parts = append(parts, fmt.Sprintf("%s=%q", sanitize(extraKey), escapeLabel(extraValue)))
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Gauge emits one gauge sample. Pass empty key/value for an unlabelled
// series.
func (p *PromWriter) Gauge(name, labelKey, labelValue string, v float64) {
	family := PromPrefix + sanitize(name)
	p.header(family, "gauge", "")
	p.printf("%s%s %s\n", family, labelSuffix(labelKey, labelValue), formatFloat(v))
}

// Counter emits one counter sample; the family gets the conventional _total
// suffix.
func (p *PromWriter) Counter(name, labelKey, labelValue string, v float64) {
	family := PromPrefix + sanitize(name) + "_total"
	p.header(family, "counter", "")
	p.printf("%s%s %s\n", family, labelSuffix(labelKey, labelValue), formatFloat(v))
}

// Histogram emits one histogram series (cumulative buckets in seconds, sum,
// count) from a snapshot.
func (p *PromWriter) Histogram(hs HistogramSnapshot) {
	family := PromPrefix + sanitize(hs.Name) + "_seconds"
	p.header(family, "histogram", "")
	// Emit buckets only up to the highest populated one; cumulative counts
	// stay valid and the +Inf bucket always closes the series.
	last := -1
	for i, b := range hs.Buckets {
		if b > 0 {
			last = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= last; i++ {
		cum += hs.Buckets[i]
		le := formatFloat(float64(BucketUpperBound(i)) / 1e9)
		p.printf("%s_bucket%s %d\n", family, labelWith(hs.LabelKey, hs.LabelValue, "le", le), cum)
	}
	p.printf("%s_bucket%s %d\n", family, labelWith(hs.LabelKey, hs.LabelValue, "le", "+Inf"), hs.Count)
	p.printf("%s_sum%s %s\n", family, labelSuffix(hs.LabelKey, hs.LabelValue), formatFloat(float64(hs.Sum)/1e9))
	p.printf("%s_count%s %d\n", family, labelSuffix(hs.LabelKey, hs.LabelValue), hs.Count)
}

// Snapshot emits every counter and histogram in the snapshot.
func (p *PromWriter) Snapshot(s Snapshot) {
	for _, c := range s.Counters {
		p.Counter(c.Name, c.LabelKey, c.LabelValue, float64(c.Value))
	}
	for _, h := range s.Histograms {
		p.Histogram(h)
	}
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64

	// labelString preserves the original label text for Series.
	labelString string
}

// Series renders the sample's identity as name{k="v",...} with the labels
// exactly as they appeared in the input.
func (s PromSample) Series() string {
	if s.labelString == "" {
		return s.Name
	}
	return s.Name + "{" + s.labelString + "}"
}

// ParseProm validates Prometheus text-format input and returns its samples.
// It is deliberately small — enough to let CI prove a scrape of /metrics is
// well-formed without importing a client library: comment and empty lines
// are skipped, every other line must be `name[{labels}] value [timestamp]`
// with a legal metric name, parseable labels and a parseable float value.
func ParseProm(r io.Reader) ([]PromSample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []PromSample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom parse: line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	s.Name, rest = rest[:i], rest[i:]
	s.labelString = ""
	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		s.labelString = rest[1:end]
		if err := parseLabels(s.labelString, s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after %q", s.Name)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parsePromValue(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return 0, fmt.Errorf("bare Inf sample value")
	case "NaN":
		return 0, nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", f)
	}
	return v, nil
}

func parseLabels(block string, into map[string]string) error {
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("bad label pair %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if name == "" || !isName(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("label %s value not quoted", name)
		}
		// Scan the quoted value honoring escapes.
		i := 1
		var val strings.Builder
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value for %s", name)
		}
		into[name] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	return nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return s != ""
}
