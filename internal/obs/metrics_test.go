package obs

import (
	"math"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("edges", "", "")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if again := r.Counter("edges", "", ""); again != c {
		t.Fatalf("Counter not deduplicated by key")
	}
	if other := r.Counter("edges", "kind", "dropped"); other == c {
		t.Fatalf("distinct labels must yield distinct counters")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", "")
	h := r.Histogram("x", "", "")
	c.Add(1) // must not panic
	h.Observe(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter reported a value")
	}
	var tr *Tracer
	if tr.SampleEdge(0) {
		t.Fatalf("nil tracer sampled an edge")
	}
	tr.Record(TraceEvent{})
	if ev := tr.Dump(); ev != nil {
		t.Fatalf("nil tracer dumped events")
	}
	if (Snapshot{}).Counters != nil {
		t.Fatalf("zero snapshot not empty")
	}
	_ = (*Registry)(nil).Snapshot()
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)  // bucket 1: [1,2)
	h.Observe(3)  // bucket 2: [2,4)
	h.Observe(-7) // clamped to 0
	h.ObserveN(1024, 3)
	s := snapshotOf(h, "lat", "", "")
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+3+0+3*1024 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 1 || s.Buckets[11] != 3 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets)
	}
	if s.Mean == 0 || s.P50 == 0 {
		t.Fatalf("summary not filled: %+v", s)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	s := snapshotOf(h, "lat", "", "")
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow observation not in last bucket: %v", s.Buckets)
	}
}

func TestQuantileEstimates(t *testing.T) {
	h := &Histogram{}
	// 100 observations of ~1µs and 100 of ~1ms: p50 must sit in the low
	// group's neighborhood, p99 in the high group's bucket [2^19, 2^20).
	for i := 0; i < 100; i++ {
		h.Observe(1000)
		h.Observe(1_000_000)
	}
	s := snapshotOf(h, "lat", "", "")
	if s.P50 < 512 || s.P50 > 2048 {
		t.Fatalf("P50 = %v, want ~1µs", s.P50)
	}
	if s.P99 < float64(1<<19) || s.P99 > float64(1<<21) {
		t.Fatalf("P99 = %v, want ~1ms bucket", s.P99)
	}
	if got := s.Mean; got != float64(1000+1_000_000)/2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Segment(SegSJTreeJoin).Observe(5)
	r.Segment(SegLocalSearch).Observe(5)
	r.Histogram(DetectLagHistogramName, "", "").Observe(1)
	r.Counter("b_counter", "", "").Inc()
	r.Counter("a_counter", "", "").Inc()
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_counter" {
		t.Fatalf("counters unsorted: %+v", s.Counters)
	}
	wantH := []string{DetectLagHistogramName, SegmentHistogramName, SegmentHistogramName}
	for i, h := range s.Histograms {
		if h.Name != wantH[i] {
			t.Fatalf("histogram %d = %s, want %s", i, h.Name, wantH[i])
		}
	}
	if s.Histograms[1].LabelValue != SegLocalSearch || s.Histograms[2].LabelValue != SegSJTreeJoin {
		t.Fatalf("segment labels unsorted: %+v", s.Histograms)
	}
}

func TestConfigNormalized(t *testing.T) {
	if c := (Config{}).Normalized(); c.Registry != nil || c.Clock != nil {
		t.Fatalf("disabled config must stay empty: %+v", c)
	}
	c := Config{Enabled: true}.Normalized()
	if c.Registry == nil || c.Clock == nil {
		t.Fatalf("enabled config missing defaults: %+v", c)
	}
	if c.Clock.Now() <= 0 {
		t.Fatalf("system clock returned non-positive nanos")
	}
	w := c.PerWorker(3)
	if w.Registry == c.Registry {
		t.Fatalf("PerWorker must allocate a private registry")
	}
	if w.Clock != c.Clock || w.Shard != 3 {
		t.Fatalf("PerWorker must share the clock and set the shard: %+v", w)
	}
	if d := (Config{}).PerWorker(0); d.Enabled {
		t.Fatalf("disabled PerWorker flipped on")
	}
}

func snapshotOf(h *Histogram, name, lk, lv string) HistogramSnapshot {
	hs := HistogramSnapshot{
		Name: name, LabelKey: lk, LabelValue: lv,
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]uint64, NumBuckets),
	}
	for i := range h.buckets {
		hs.Buckets[i] = h.buckets[i].Load()
	}
	hs.fillSummary()
	return hs
}
