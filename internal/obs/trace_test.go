package obs

import "testing"

// fakeClock is a deterministic Clock for tests.
type fakeClock struct{ ns int64 }

func (f *fakeClock) Now() int64 { return f.ns }

func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(16, 10, 1000, &fakeClock{ns: 1})
	for id := uint64(0); id < 100; id++ {
		want := id%10 == 0
		if got := tr.SampleEdge(id); got != want {
			t.Fatalf("SampleEdge(%d) = %v, want %v", id, got, want)
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	clk := &fakeClock{ns: 1}
	tr := NewTracer(4, 1, 1000, clk)
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Stage: StageProcess, EdgeID: uint64(i)})
	}
	ev := tr.Dump()
	if len(ev) != 4 {
		t.Fatalf("Dump len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.EdgeID != uint64(6+i) {
			t.Fatalf("Dump[%d].EdgeID = %d, want %d (oldest-first)", i, e.EdgeID, 6+i)
		}
		if e.Seq != uint64(7+i) {
			t.Fatalf("Dump[%d].Seq = %d", i, e.Seq)
		}
		if e.WallNS != 1 {
			t.Fatalf("WallNS not stamped from clock: %+v", e)
		}
	}
	rec, dropped := tr.Stats()
	if rec != 10 || dropped != 0 {
		t.Fatalf("Stats = (%d, %d)", rec, dropped)
	}
}

func TestTracerPerSecondCap(t *testing.T) {
	clk := &fakeClock{ns: 0}
	tr := NewTracer(100, 1, 3, clk)
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Stage: StageIngest})
	}
	if rec, dropped := tr.Stats(); rec != 3 || dropped != 7 {
		t.Fatalf("within one second: recorded=%d dropped=%d, want 3/7", rec, dropped)
	}
	clk.ns = 2_000_000_000 // next wall second: budget resets
	for i := 0; i < 2; i++ {
		tr.Record(TraceEvent{Stage: StageIngest})
	}
	if rec, dropped := tr.Stats(); rec != 5 || dropped != 7 {
		t.Fatalf("after second rollover: recorded=%d dropped=%d, want 5/7", rec, dropped)
	}
}

func TestTracerDisabledConstruction(t *testing.T) {
	if tr := NewTracer(0, 1, 0, nil); tr.Enabled() {
		t.Fatalf("zero capacity must disable the tracer")
	}
	if tr := NewTracer(8, 0, 0, nil); tr.Enabled() {
		t.Fatalf("zero sampling must disable the tracer")
	}
	tr := NewTracer(8, 1, 0, nil)
	if !tr.Enabled() || tr.perSec != 1000 {
		t.Fatalf("defaults not applied: %+v", tr)
	}
}
