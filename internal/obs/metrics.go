package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0 holds
// zero-valued observations; bucket i (i ≥ 1) holds values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). The last bucket additionally
// absorbs everything larger. With nanosecond observations the layout spans
// 1 ns to ~9 minutes in power-of-two steps — fine enough for microsecond
// joins and wide enough for multi-second queue waits, with no configuration
// to disagree on, which is what makes snapshots mergeable by construction.
const NumBuckets = 40

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores Add (disabled observability).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket latency histogram with atomic cells. Writers
// call Observe with non-negative nanosecond (or other unit) values; readers
// snapshot at any time. The zero value is ready to use; a nil Histogram
// ignores observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records n observations of the same value in one shot — the batch
// form used when one measured wait applies to every edge in a batch, so
// per-edge segment means stay composable with per-edge measurements.
func (h *Histogram) ObserveN(v int64, n int) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(uint64(n))
	h.count.Add(uint64(n))
	h.sum.Add(v * int64(n))
}

// metricKey identifies one metric series inside a registry.
type metricKey struct {
	name       string
	labelKey   string
	labelValue string
}

// Registry is a get-or-create store of named counters and histograms. Handle
// resolution takes a mutex and is meant for setup time; the handles
// themselves are lock-free. Snapshots are safe from any goroutine.
type Registry struct {
	mu       sync.RWMutex
	counters map[metricKey]*Counter
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		hists:    make(map[metricKey]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Label key and
// value may be empty for unlabelled series. A nil registry returns nil (and
// nil handles ignore writes), so call sites need no enabled checks beyond
// the one that decided not to create the registry.
func (r *Registry) Counter(name, labelKey, labelValue string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name, labelKey, labelValue}
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, labelKey, labelValue string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name, labelKey, labelValue}
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// CounterSnapshot is one counter series at a point in time.
type CounterSnapshot struct {
	Name       string `json:"name"`
	LabelKey   string `json:"label_key,omitempty"`
	LabelValue string `json:"label_value,omitempty"`
	Value      uint64 `json:"value"`
}

// HistogramSnapshot is one histogram series at a point in time, with summary
// statistics precomputed so JSON consumers (loadgen, dashboards) need not
// reimplement bucket math. Quantiles are log-linear estimates from the
// power-of-two buckets.
type HistogramSnapshot struct {
	Name       string   `json:"name"`
	LabelKey   string   `json:"label_key,omitempty"`
	LabelValue string   `json:"label_value,omitempty"`
	Count      uint64   `json:"count"`
	Sum        int64    `json:"sum_ns"`
	Mean       float64  `json:"mean_ns"`
	P50        float64  `json:"p50_ns"`
	P90        float64  `json:"p90_ns"`
	P99        float64  `json:"p99_ns"`
	Buckets    []uint64 `json:"buckets,omitempty"`
}

// Snapshot is a consistent-enough copy of a registry (each cell is read
// atomically; cross-cell skew is bounded by in-flight observations), in
// deterministic (name, label) order.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	var s Snapshot
	for k, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{
			Name: k.name, LabelKey: k.labelKey, LabelValue: k.labelValue,
			Value: c.Value(),
		})
	}
	for k, h := range hists {
		hs := HistogramSnapshot{
			Name: k.name, LabelKey: k.labelKey, LabelValue: k.labelValue,
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: make([]uint64, NumBuckets),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		hs.fillSummary()
		s.Histograms = append(s.Histograms, hs)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.LabelValue < b.LabelValue
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.LabelValue < b.LabelValue
	})
}

// fillSummary recomputes Mean and the quantile estimates from Count, Sum and
// Buckets.
func (hs *HistogramSnapshot) fillSummary() {
	if hs.Count == 0 {
		hs.Mean, hs.P50, hs.P90, hs.P99 = 0, 0, 0, 0
		return
	}
	hs.Mean = float64(hs.Sum) / float64(hs.Count)
	hs.P50 = hs.Quantile(0.50)
	hs.P90 = hs.Quantile(0.90)
	hs.P99 = hs.Quantile(0.99)
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear interpolation
// inside the power-of-two bucket containing it.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	target := q * float64(hs.Count)
	cum := 0.0
	for i, b := range hs.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(b)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(len(hs.Buckets) - 1)
	return float64(hi)
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// BucketUpperBound returns the inclusive upper bound of bucket i (the
// Prometheus `le` boundary): 2^i − 1 for all but the last bucket, which is
// unbounded (+Inf) and reported as such by the exposition writer.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1<<i - 1
}

// Merge folds any number of snapshots into one: counters with the same
// (name, label) sum, histograms sum cell-wise. Shard front-ends use this to
// present per-worker registries as a single logical registry, mirroring how
// shard.Metrics() sums worker counters.
func Merge(snaps ...Snapshot) Snapshot {
	counters := make(map[metricKey]*CounterSnapshot)
	hists := make(map[metricKey]*HistogramSnapshot)
	var corder, horder []metricKey
	for _, s := range snaps {
		for _, c := range s.Counters {
			k := metricKey{c.Name, c.LabelKey, c.LabelValue}
			if have, ok := counters[k]; ok {
				have.Value += c.Value
			} else {
				cc := c
				counters[k] = &cc
				corder = append(corder, k)
			}
		}
		for _, h := range s.Histograms {
			k := metricKey{h.Name, h.LabelKey, h.LabelValue}
			if have, ok := hists[k]; ok {
				have.Count += h.Count
				have.Sum += h.Sum
				for i := range have.Buckets {
					if i < len(h.Buckets) {
						have.Buckets[i] += h.Buckets[i]
					}
				}
			} else {
				hh := h
				hh.Buckets = append([]uint64(nil), h.Buckets...)
				hists[k] = &hh
				horder = append(horder, k)
			}
		}
	}
	var out Snapshot
	for _, k := range corder {
		out.Counters = append(out.Counters, *counters[k])
	}
	for _, k := range horder {
		h := hists[k]
		h.fillSummary()
		out.Histograms = append(out.Histograms, *h)
	}
	out.sort()
	return out
}

// Find returns the histogram snapshot with the given name and label value,
// if present.
func (s Snapshot) Find(name, labelValue string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.LabelValue == labelValue {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// FindCounter returns the counter snapshot with the given name and label
// value, if present.
func (s Snapshot) FindCounter(name, labelValue string) (CounterSnapshot, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelValue == labelValue {
			return c, true
		}
	}
	return CounterSnapshot{}, false
}
