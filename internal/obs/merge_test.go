package obs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestMergeEqualsSingleRegistry is the cross-shard merge property test: the
// same stream of observations, split across N shard-local registries written
// from N goroutines, must merge into exactly the snapshot a single registry
// produces when fed every observation. Run under -race this also proves the
// write/snapshot paths are race-clean.
func TestMergeEqualsSingleRegistry(t *testing.T) {
	const shards = 7
	const observations = 20_000
	rng := rand.New(rand.NewSource(42))

	type obsRecord struct {
		shard   int
		segment string
		value   int64
		counter bool
	}
	segments := []string{SegIngestQueueWait, SegShardMailbox, SegLocalSearch, SegSJTreeJoin, SegDispatch, SegHTTPFlush}
	records := make([]obsRecord, observations)
	for i := range records {
		records[i] = obsRecord{
			shard:   rng.Intn(shards),
			segment: segments[rng.Intn(len(segments))],
			value:   rng.Int63n(1 << 30),
			counter: rng.Intn(4) == 0,
		}
	}

	// Reference: one registry, all observations.
	single := NewRegistry()
	for _, rec := range records {
		if rec.counter {
			single.Counter("events", "segment", rec.segment).Inc()
		} else {
			single.Segment(rec.segment).Observe(rec.value)
		}
	}

	// Shard-local registries written concurrently (each goroutine owns its
	// registry, like shard workers do), snapshotted from the main goroutine
	// while a late writer is still running to exercise the atomic reads.
	locals := make([]*Registry, shards)
	for i := range locals {
		locals[i] = NewRegistry()
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, rec := range records {
				if rec.shard != s {
					continue
				}
				if rec.counter {
					locals[s].Counter("events", "segment", rec.segment).Inc()
				} else {
					locals[s].Segment(rec.segment).Observe(rec.value)
				}
			}
		}(s)
	}
	// Concurrent snapshot: result is discarded, it only has to be safe.
	for i := 0; i < 10; i++ {
		snaps := make([]Snapshot, shards)
		for s := range locals {
			snaps[s] = locals[s].Snapshot()
		}
		_ = Merge(snaps...)
	}
	wg.Wait()

	snaps := make([]Snapshot, shards)
	for s := range locals {
		snaps[s] = locals[s].Snapshot()
	}
	merged := Merge(snaps...)
	want := single.Snapshot()

	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged snapshot differs from single-registry snapshot:\nmerged: %+v\nwant:   %+v", merged, want)
	}
}

func TestMergeSumsSeries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("edges", "", "").Add(3)
	b.Counter("edges", "", "").Add(4)
	a.Segment(SegLocalSearch).Observe(10)
	b.Segment(SegLocalSearch).ObserveN(10, 2)
	m := Merge(a.Snapshot(), b.Snapshot())
	c, ok := m.FindCounter("edges", "")
	if !ok || c.Value != 7 {
		t.Fatalf("merged counter = %+v, ok=%v", c, ok)
	}
	h, ok := m.Find(SegmentHistogramName, SegLocalSearch)
	if !ok || h.Count != 3 || h.Sum != 30 {
		t.Fatalf("merged histogram = %+v, ok=%v", h, ok)
	}
	if h.Mean != 10 {
		t.Fatalf("merged mean = %v, want 10", h.Mean)
	}
	// Merging an empty snapshot is the identity.
	m2 := Merge(m, Snapshot{})
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("merge with empty snapshot changed the result")
	}
}
