// Package obs is StreamWorks' zero-dependency observability layer: lock-light
// atomic counters and fixed-bucket latency histograms behind a mergeable
// registry, a wall-clock seam that keeps the hot path stream-time-pure, and a
// sampled trace ring buffer for following individual edges through the tiers.
//
// The design mirrors how Metrics() already aggregates: each shard worker owns
// a private Registry written only by its driver goroutine (writes are atomic,
// so snapshots may be taken from any goroutine), and front-ends fold the
// per-worker snapshots with Merge. Nothing in this package allocates on the
// hot path once the metric handles have been resolved, and every handle is
// nil-safe so disabled observability costs a single branch.
//
// Wall time never enters the core engine directly: the swvet walltime pass
// bans time.Now there. Core instead receives a Clock through its Config and
// reads nanoseconds through the interface; the only implementation that
// touches the machine clock lives here, outside the hot-path packages, and
// walltime additionally flags any hot-path reference to it so the seam cannot
// be short-circuited.
package obs

import "time"

// Clock supplies wall-clock nanoseconds to serving-tier instrumentation. It
// exists so hot-path packages can measure wall latency without importing a
// wall clock: they accept a Clock from their configuration and the concrete
// implementation stays out of their dependency cone (enforced by swvet's
// walltime pass).
type Clock interface {
	// Now returns the current wall time in nanoseconds since the Unix epoch.
	Now() int64
}

type systemClock struct{}

func (systemClock) Now() int64 { return time.Now().UnixNano() }

// SystemClock is the real wall clock. Hot-path packages must not reference
// it directly — they receive it via configuration (swvet: walltime).
var SystemClock Clock = systemClock{}

// Config is the observability seam handed to each tier. The zero value is
// fully disabled and costs one branch per instrumentation site.
type Config struct {
	// Enabled turns instrumentation on. When false the other fields are
	// ignored and every instrumentation site reduces to a single branch.
	Enabled bool
	// Registry receives this tier's counters and histograms. Nil with
	// Enabled set means Normalized allocates a fresh one.
	Registry *Registry
	// Clock supplies wall nanoseconds. Nil with Enabled set means
	// SystemClock. Tests inject a fake to make latency assertions exact.
	Clock Clock
	// Tracer, when non-nil, samples per-edge journey events into a ring
	// buffer. A nil Tracer is valid and disabled (nil-safe methods).
	Tracer *Tracer
	// Shard identifies the engine on trace events: the shard worker index
	// for sharded engines (set by PerWorker), zero for a standalone engine.
	// Tier-level events (ingest, deliver) record -1 instead.
	Shard int32
}

// Normalized fills in defaults: a fresh Registry and the SystemClock when
// enabled, and a cleared config when disabled (so disabled configs never
// carry live handles by accident).
func (c Config) Normalized() Config {
	if !c.Enabled {
		return Config{}
	}
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = SystemClock
	}
	return c
}

// PerWorker derives a worker-local copy of the config for shard worker i:
// same clock and tracer (both safe for concurrent use), but a private
// Registry so the worker's driver goroutine writes without sharing cache
// lines with its siblings — the same topology shard.Metrics() uses for its
// counters.
func (c Config) PerWorker(i int) Config {
	if !c.Enabled {
		return c
	}
	w := c
	w.Registry = NewRegistry()
	w.Shard = int32(i)
	return w
}

// Segment labels for the detect-and-deliver latency histograms. Each names
// one leg of an edge's journey from HTTP ingest to subscription delivery;
// summed segment means should account for (nearly all of) the end-to-end
// latency loadgen measures.
const (
	// SegIngestQueueWait is the time from an ingest request reaching the
	// server to the runner goroutine picking its batch up: body decode plus
	// the wait in the bounded ingest queue.
	SegIngestQueueWait = "ingest_queue_wait"
	// SegShardMailbox is the time an edge waits in a shard worker's mailbox
	// between routing and processing.
	SegShardMailbox = "shard_mailbox_wait"
	// SegLocalSearch is the per-edge time spent in leaf-primitive local
	// searches (isomorphism matching), measured in the core engine.
	SegLocalSearch = "local_search"
	// SegSJTreeJoin is the per-edge time spent inserting primitive matches
	// into the SJ-Tree and propagating hash joins upward.
	SegSJTreeJoin = "sjtree_join"
	// SegDispatch is the time from core emission of a complete match to the
	// subscription hub handing it to a subscriber buffer (covers the shard
	// merge channel and fan-out).
	SegDispatch = "dispatch"
	// SegHTTPFlush is the time from the engine handing a match to subscriber
	// sinks to the streaming HTTP response flush completing: the wait in the
	// subscriber's bounded buffer plus encode and flush. It picks up exactly
	// where SegDispatch ends.
	SegHTTPFlush = "http_flush"
)

// Metric names shared across tiers.
const (
	// SegmentHistogramName is the histogram family holding the per-segment
	// wall-time latencies, labelled by segment.
	SegmentHistogramName = "segment_latency"
	// SegmentLabelKey is the label key for SegmentHistogramName.
	SegmentLabelKey = "segment"
	// DetectLagHistogramName is the stream-time detection-lag histogram: for
	// every emitted match, DetectedAt minus the match's span end. It is
	// computed purely from stream timestamps, so the core records it without
	// touching any clock.
	DetectLagHistogramName = "detect_stream_lag"
	// JourneyHistogramName is the per-match wall-clock journey histogram:
	// for every delivered match, flush completion minus the serving-tier
	// arrival of the edge that completed it. Unlike the per-edge segment
	// histograms it is match-weighted, so its mean is directly comparable to
	// a client's measured detect-and-deliver latency — the closure check for
	// the segment breakdown.
	JourneyHistogramName = "detect_wall_journey"
	// MQOSharedHitsCounterName counts the shared-plan DAG's fan-out saving:
	// for every leaf local search of a DAG node referenced by k parents or
	// consumers, k−1 per-query searches were avoided. Zero while no
	// structurally overlapping queries are attached — sharing is visible,
	// not assumed.
	MQOSharedHitsCounterName = "mqo_shared_hits"
)

// Segment returns the histogram for one latency segment, creating it on
// first use. Resolve handles at setup time, not per edge.
func (r *Registry) Segment(seg string) *Histogram {
	return r.Histogram(SegmentHistogramName, SegmentLabelKey, seg)
}
