package streamworks

import (
	"context"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks/internal/wal"
)

// DurabilityStats is the public view of the engine's durability state,
// surfaced through /healthz (Mode) and /v1/metrics (the counters).
type DurabilityStats struct {
	Mode                string `json:"mode"` // "off", "ok" or "degraded"
	Frames              uint64 `json:"frames_appended"`
	Bytes               uint64 `json:"bytes_appended"`
	Fsyncs              uint64 `json:"fsyncs"`
	Segments            uint64 `json:"segments_created"`
	Snapshots           uint64 `json:"snapshots_written"`
	TornTailTruncations uint64 `json:"torn_tail_truncations"`
	AppendErrors        uint64 `json:"append_errors"`
	EmittedTracked      uint64 `json:"emitted_tracked"`
	Backlog             uint64 `json:"recovery_backlog"`
}

// durable is the durability state shared by the in-process backends: the
// WAL manager, the recovery backlog awaiting its first subscriber, and the
// flags gating when appends and emission notes are live.
type durable struct {
	man *wal.Manager
	// manual defers emission acknowledgment to the embedder
	// (WithManualDeliveryAck): the serving tier acks a match only once it
	// has flushed it to the subscriber's socket.
	manual bool
	// failed marks durability that was requested but could not be
	// established (WAL open failure): degraded from birth, engine runs
	// in-memory.
	failed bool
	// replaying gates out WAL appends and emission notes while recovered
	// operations are being pushed back through the engine.
	replaying atomic.Bool

	backMu  sync.Mutex
	backlog []Match
}

// openDurable opens (and recovers) the WAL when a data dir is configured.
// It never fails the constructor: an unopenable WAL yields a degraded
// durable so ingest still works, mirroring runtime write-failure handling.
func openDurable(cfg *config) (*durable, *wal.Recovery) {
	if cfg.dataDir == "" {
		return nil, nil
	}
	d := &durable{manual: cfg.manualAck}
	policy, err := wal.ParseFsyncPolicy(cfg.fsyncPolicy)
	if err != nil {
		log.Printf("streamworks: %v; durability degraded", err)
		d.failed = true
		return d, nil
	}
	man, rec, err := wal.Open(wal.Options{
		Dir:           cfg.dataDir,
		FS:            cfg.walFS,
		Fsync:         policy,
		FsyncInterval: cfg.fsyncInterval,
		SnapshotEvery: cfg.snapshotEvery,
		Retention:     cfg.engine.Retention,
		Slack:         cfg.engine.Slack,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Printf("streamworks: opening WAL in %s: %v; running without durability (degraded)", cfg.dataDir, err)
		d.failed = true
		return d, nil
	}
	d.man = man
	return d, rec
}

func (d *durable) live() bool {
	return d != nil && d.man != nil && !d.replaying.Load()
}

func (d *durable) appendEdges(edges []StreamEdge) {
	if d.live() {
		d.man.AppendEdges(edges)
	}
}

// appendEdgesAsync starts the write-ahead append and returns its join
// barrier (nil when durability is off). The caller overlaps engine work
// with the log write, then must run the barrier before acking the batch or
// flushing emission notes — that is the point at which the frame has
// reached the OS and survives a crash.
func (d *durable) appendEdgesAsync(edges []StreamEdge) func() error {
	if !d.live() {
		return nil
	}
	return d.man.AppendEdgesAsync(edges)
}

func (d *durable) appendRegister(r wal.RegisterRecord) {
	if d.live() {
		d.man.AppendRegister(r)
	}
}

func (d *durable) appendUnregister(name string) {
	if d.live() {
		d.man.AppendUnregister(name)
	}
}

func (d *durable) appendAdvance(ts Timestamp) {
	if d.live() {
		d.man.AppendAdvance(int64(ts))
	}
}

// note records a delivered emission (auto mode and backlog replay).
func (d *durable) note(query, signature string, spanStart int64) {
	if d.live() {
		d.man.NoteEmitted(query, signature, spanStart)
	}
}

func (d *durable) close() {
	if d != nil && d.man != nil {
		d.man.Close()
	}
}

// takeBacklog removes and returns the recovered matches the filter admits;
// each backlog entry is handed to exactly one subscriber.
func (d *durable) takeBacklog(filter string) []Match {
	if d == nil || d.man == nil {
		return nil
	}
	d.backMu.Lock()
	defer d.backMu.Unlock()
	if len(d.backlog) == 0 {
		return nil
	}
	if filter == "" {
		out := d.backlog
		d.backlog = nil
		return out
	}
	var out []Match
	kept := d.backlog[:0]
	for _, m := range d.backlog {
		if m.Query == filter {
			out = append(out, m)
		} else {
			kept = append(kept, m)
		}
	}
	d.backlog = kept
	return out
}

func (d *durable) stats() DurabilityStats {
	if d == nil {
		return DurabilityStats{Mode: "off"}
	}
	if d.man == nil {
		return DurabilityStats{Mode: "degraded"}
	}
	st := d.man.Stats()
	mode := "ok"
	if st.Degraded {
		mode = "degraded"
	}
	d.backMu.Lock()
	backlog := uint64(len(d.backlog))
	d.backMu.Unlock()
	return DurabilityStats{
		Mode:                mode,
		Frames:              st.Frames,
		Bytes:               st.Bytes,
		Fsyncs:              st.Fsyncs,
		Segments:            st.Segments,
		Snapshots:           st.Snapshots,
		TornTailTruncations: st.TornTruncations,
		AppendErrors:        st.AppendErrors,
		EmittedTracked:      st.EmittedTracked,
		Backlog:             backlog,
	}
}

// registerRecord resolves one registration's effective strategy and
// adaptive mode (call options over engine defaults) into its durable form,
// so recovery re-registers with identical semantics even if the engine's
// defaults change across the restart.
func (c *config) registerRecord(q *Query, o RegisterOptions) wal.RegisterRecord {
	strat := o.Strategy
	if strat == "" {
		strat = c.strategy
	}
	adaptive := c.adaptive
	switch o.Adaptive {
	case AdaptiveOn:
		adaptive = true
	case AdaptiveOff:
		adaptive = false
	}
	mode := "off"
	if adaptive {
		mode = "on"
	}
	return wal.RegisterRecord{Name: q.Name(), DSL: FormatQuery(q), Strategy: strat, Adaptive: mode}
}

// recordOptions maps a recovered registration record back onto the public
// registration options.
func recordOptions(r *wal.RegisterRecord) RegisterOptions {
	o := RegisterOptions{Strategy: r.Strategy}
	switch r.Adaptive {
	case "on":
		o.Adaptive = AdaptiveOn
	case "off":
		o.Adaptive = AdaptiveOff
	}
	return o
}

// replayRecovery pushes the recovered operations back through the engine's
// ordinary paths (d.replaying suppresses re-appending them to the log),
// collecting every match the replay re-derives via a temporary
// subscription. flush is the backend's delivery barrier — after it
// returns, every re-derived match has reached the collector. Matches whose
// keys are not in the recovered emitted-set were derived but never
// delivered before the crash; they become the backlog, delivered once to
// the first matching subscriber that attaches.
func replayRecovery(e Engine, d *durable, rec *wal.Recovery, flush func() error) {
	ctx := context.Background()
	collected := make(map[string]Match)
	sub, err := e.Subscribe("", SinkFunc(func(m Match) {
		collected[wal.MatchKey(m.Query, m.Signature)] = m
	}))
	if err != nil {
		log.Printf("streamworks: recovery subscription failed: %v", err)
		return
	}
	for _, op := range rec.Ops {
		switch op.Type {
		case wal.RecEdgeBatch:
			if err := e.ProcessBatch(ctx, op.Edges); err != nil {
				log.Printf("streamworks: recovery: replaying %d edges: %v", len(op.Edges), err)
			}
		case wal.RecRegister:
			q, err := ParseQuery(op.Register.DSL)
			if err != nil {
				log.Printf("streamworks: recovery: parsing query %q: %v", op.Register.Name, err)
				continue
			}
			if err := e.RegisterQueryWith(ctx, q, recordOptions(op.Register)); err != nil {
				log.Printf("streamworks: recovery: re-registering %q: %v", op.Register.Name, err)
			}
		case wal.RecUnregister:
			if err := e.UnregisterQuery(ctx, op.Name); err != nil {
				log.Printf("streamworks: recovery: unregistering %q: %v", op.Name, err)
			}
		case wal.RecAdvance:
			if err := e.Advance(ctx, Timestamp(op.TS)); err != nil {
				log.Printf("streamworks: recovery: advancing watermark: %v", err)
			}
		}
	}
	if err := flush(); err != nil {
		log.Printf("streamworks: recovery: flush barrier: %v", err)
	}
	sub.Close()
	backlog := make([]Match, 0)
	for key, m := range collected {
		if _, emitted := rec.Emitted[key]; !emitted {
			backlog = append(backlog, m)
		}
	}
	sort.Slice(backlog, func(i, j int) bool {
		if backlog[i].Query != backlog[j].Query {
			return backlog[i].Query < backlog[j].Query
		}
		return backlog[i].Signature < backlog[j].Signature
	})
	d.backMu.Lock()
	d.backlog = backlog
	d.backMu.Unlock()
}
