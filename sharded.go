package streamworks

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/shard"
)

// Sharded is the scale-out in-process backend: N core engines over hash
// partitions of the vertex space, with deduplicated per-query push
// subscriptions delivered from the merge goroutine. A mutex serializes the
// underlying front-end's single-driver control surface, so the public
// concurrency contract holds; Subscribe and subscription teardown bypass the
// mutex entirely and never wait behind ingestion.
type Sharded struct {
	mu  sync.Mutex // serializes engine control ops (the single-driver contract)
	eng *shard.ShardedEngine
	cfg config // registration defaults (strategy, adaptive)

	// qmu guards the query map, which the match-delivery path reads from
	// the merger goroutine — it must never wait behind mu, or a blocked
	// ingest could deadlock delivery.
	qmu     sync.RWMutex
	queries map[string]*Query

	// smu guards the public subscription registry (copy-on-write snapshot
	// in subs) and the lazy engine-side subscription feeding it. One engine
	// subscription serves every public subscriber, so each match is
	// resolved into its public Match form exactly once, however many
	// subscribers are attached.
	smu     sync.Mutex
	subs    []*shardedSub
	seq     int
	inner   *shard.Subscription
	drained bool

	// dur is the durability glue (nil without WithDataDir). Emission notes
	// fire at the end of fanout, on the merge goroutine, once every
	// subscriber sink has returned for the event.
	dur *durable

	closed atomic.Bool
}

var _ Engine = (*Sharded)(nil)

// NewSharded builds and starts a sharded backend (default: 4 shards of the
// default engine configuration).
func NewSharded(opts ...Option) *Sharded {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.finishObs()
	eng := shard.New(&shard.Config{
		Shards:       cfg.shards,
		Engine:       cfg.engine,
		Buffer:       cfg.shardBuffer,
		AdvanceEvery: cfg.advanceEvery,
	})
	eng.Start()
	s := &Sharded{eng: eng, cfg: cfg, queries: make(map[string]*Query)}
	dur, rec := openDurable(&s.cfg)
	s.dur = dur
	if rec != nil {
		dur.replaying.Store(true)
		replayRecovery(s, dur, rec, s.Flush)
		dur.replaying.Store(false)
	}
	return s
}

// Flush is a full-pipeline barrier: it returns once every edge and control
// message accepted before the call has been processed by its shard and
// every match they produced has been delivered to subscriptions. Sharded
// only — delivery on the other backends is already synchronous.
func (s *Sharded) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return translate(s.eng.Flush())
}

// Shards returns the number of engine shards.
func (s *Sharded) Shards() int { return s.eng.Shards() }

// shardedSub is one public subscription, fed by the engine-side fan-out.
type shardedSub struct {
	s      *Sharded
	id     int
	query  string
	sink   MatchSink
	closed atomic.Bool
	done   chan struct{}
	once   sync.Once
}

func (sub *shardedSub) Done() <-chan struct{} { return sub.done }
func (sub *shardedSub) Err() error            { return nil }

// Close cancels the subscription. It only touches the registry lock, so it
// is safe from any goroutine — including from inside the subscription's own
// sink. A delivery already in flight may still arrive concurrently.
func (sub *shardedSub) Close() error {
	if sub.closed.Swap(true) {
		return nil
	}
	s := sub.s
	s.smu.Lock()
	for i, o := range s.subs {
		if o.id == sub.id {
			subs := make([]*shardedSub, 0, len(s.subs)-1)
			subs = append(subs, s.subs[:i]...)
			s.subs = append(subs, s.subs[i+1:]...)
			break
		}
	}
	s.smu.Unlock()
	sub.finish()
	return nil
}

func (sub *shardedSub) finish() {
	sub.once.Do(func() { close(sub.done) })
}

// fanout runs on the merge goroutine for every deduplicated match: resolve
// the event into the public Match form once, then push it to every
// subscription whose filter admits it.
func (s *Sharded) fanout(ev core.MatchEvent) {
	s.smu.Lock()
	subs := s.subs
	s.smu.Unlock()
	built := false
	var rep Match
	for _, sub := range subs {
		if sub.closed.Load() || (sub.query != "" && sub.query != ev.Query) {
			continue
		}
		if !built {
			s.qmu.RLock()
			q := s.queries[ev.Query]
			s.qmu.RUnlock()
			rep = export.BuildReport(ev, q, nil)
			if s.cfg.engine.Obs.Enabled && s.cfg.engine.Obs.Clock != nil {
				// Marks the dispatch→flush hand-off: the serving tier
				// measures its flush segment (subscriber-buffer wait
				// included) from this stamp.
				rep.DeliveredWallNS = s.cfg.engine.Obs.Clock.Now()
			}
			built = true
		}
		sub.sink.OnMatch(rep)
	}
	if s.dur != nil && !s.dur.manual {
		// Every sink above has returned: the match is delivered, so it is
		// safe to acknowledge it to the WAL (suppressing it on recovery).
		// The report, when one was built, already carries the canonical
		// signature — reuse it rather than recomputing the string.
		sig := rep.Signature
		if !built {
			sig = ev.Match.Signature()
		}
		s.dur.note(ev.Query, sig, int64(ev.Match.Span.Start))
	}
}

// finishSubs marks the registry drained (the engine subscription ended) and
// finishes every public subscription.
func (s *Sharded) finishSubs() {
	s.smu.Lock()
	s.drained = true
	subs := s.subs
	s.subs = nil
	s.smu.Unlock()
	for _, sub := range subs {
		sub.finish()
	}
}

// translate maps front-end sentinels onto the public ones.
func translate(err error) error {
	if errors.Is(err, shard.ErrClosed) {
		return ErrClosed
	}
	return err
}

// RegisterQuery replicates a continuous query onto every shard. Queries
// without a hub vertex must be registered before streaming begins (the
// front-end's broadcast-routing requirement).
func (s *Sharded) RegisterQuery(ctx context.Context, q *Query) error {
	return s.RegisterQueryWith(ctx, q, RegisterOptions{})
}

// RegisterQueryWith replicates a continuous query onto every shard,
// overriding the engine's plan-strategy and adaptive-planning defaults per
// RegisterOptions. With adaptive planning on, each shard re-plans against
// its own partition's statistics; the merged match set stays canonical
// regardless (dedup spans swap boundaries and shards alike).
func (s *Sharded) RegisterQueryWith(ctx context.Context, q *Query, opts RegisterOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.RegisterQuery(q, s.cfg.registrationOptions(opts)...); err != nil {
		return translate(err)
	}
	s.qmu.Lock()
	s.queries[q.Name()] = q
	s.qmu.Unlock()
	s.dur.appendRegister(s.cfg.registerRecord(q, opts))
	return nil
}

// UnregisterQuery removes a registration from every shard.
func (s *Sharded) UnregisterQuery(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.UnregisterQuery(name); err != nil {
		return translate(err)
	}
	s.qmu.Lock()
	delete(s.queries, name)
	s.qmu.Unlock()
	s.dur.appendUnregister(name)
	return nil
}

// Process routes one stream edge to the shards that need it. ctx bounds the
// blocking mailbox hand-off under backpressure.
func (s *Sharded) Process(ctx context.Context, se StreamEdge) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur.appendEdges([]StreamEdge{se})
	return translate(s.eng.ProcessContext(ctx, se))
}

// ProcessBatch routes a batch of edges in order.
func (s *Sharded) ProcessBatch(ctx context.Context, edges []StreamEdge) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Write-ahead, overlapped: the log write runs concurrently with mailbox
	// routing (s.mu makes log order equal routing order), and the join makes
	// the batch durable — or durability degraded — before ProcessBatch
	// returns and the batch can be acked upstream.
	join := s.dur.appendEdgesAsync(edges)
	if join != nil {
		defer join()
	}
	for _, se := range edges {
		if err := s.eng.ProcessContext(ctx, se); err != nil {
			return translate(err)
		}
	}
	return nil
}

// Advance broadcasts an explicit stream-time signal to every shard.
func (s *Sharded) Advance(ctx context.Context, ts Timestamp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dur.appendAdvance(ts)
	s.eng.Advance(ts)
	return nil
}

// Subscribe attaches sink to the query named by queryFilter ("" for all
// queries). Sinks run on the merge goroutine: a sink that blocks stalls
// match delivery and eventually ingestion, so hand work off quickly.
// Subscribe never waits behind ingestion and is safe while Process runs.
func (s *Sharded) Subscribe(queryFilter string, sink MatchSink) (Subscription, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if queryFilter != "" {
		s.qmu.RLock()
		_, known := s.queries[queryFilter]
		s.qmu.RUnlock()
		if !known {
			return nil, ErrUnknownQuery
		}
	}
	s.smu.Lock()
	s.seq++
	sub := &shardedSub{s: s, id: s.seq, query: queryFilter, sink: sink, done: make(chan struct{})}
	if s.drained {
		s.smu.Unlock()
		sub.finish()
		return sub, nil
	}
	subs := make([]*shardedSub, 0, len(s.subs)+1)
	subs = append(subs, s.subs...)
	s.subs = append(subs, sub)
	if s.inner == nil {
		// First subscriber: attach the one engine-side subscription that
		// feeds the whole registry, and watch its Done to finish every
		// public subscription when the engine drains.
		s.inner = s.eng.Subscribe("", core.MatchSinkFunc(s.fanout))
		go func(inner *shard.Subscription) {
			<-inner.Done()
			s.finishSubs()
		}(s.inner)
	}
	s.smu.Unlock()
	// Recovered matches that were never delivered before the crash replay to
	// the first matching subscriber. Delivered outside smu: the sink may
	// close its own subscription, and Close takes smu. A concurrent live
	// fanout may interleave with the backlog, which is fine — match identity
	// is (query, signature), and the engine never re-derives a match the
	// replay already produced.
	for _, m := range s.dur.takeBacklog(queryFilter) {
		sink.OnMatch(m)
		if !s.dur.manual {
			s.dur.note(m.Query, m.Signature, m.SpanStart)
		}
	}
	return sub, nil
}

// Durability reports the engine's durability mode and WAL counters.
func (s *Sharded) Durability() DurabilityStats { return s.dur.stats() }

// RegisteredQueries returns the currently registered queries, sorted by
// name — including ones recovered from the WAL at construction, which is
// how the serving tier re-seeds its HTTP query listing after a durable
// restart.
func (s *Sharded) RegisteredQueries() []*Query {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	out := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// AckDelivered acknowledges, under WithManualDeliveryAck, that a match has
// reached its consumer; once acknowledged (and checkpointed) the match is
// suppressed instead of redelivered after a crash.
func (s *Sharded) AckDelivered(query, signature string, spanStart int64) {
	s.dur.note(query, signature, spanStart)
}

// Metrics aggregates per-shard counters into the single-engine Metrics
// shape (matches post-deduplication); it keeps working after Close.
func (s *Sharded) Metrics(ctx context.Context) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Metrics(), nil
}

// ObsEnabled reports whether the engine was built WithObservability.
func (s *Sharded) ObsEnabled() bool { return s.eng.ObsEnabled() }

// ObsSnapshot folds every shard worker's observability registry and the
// front-end's own into one snapshot: counters and per-segment latency
// histograms. It is empty unless the engine was built WithObservability,
// and — unlike the control surface — safe from any goroutine.
func (s *Sharded) ObsSnapshot() ObsSnapshot { return s.eng.ObsSnapshot() }

// TraceDump returns the buffered edge-journey trace events, oldest first;
// nil unless the engine was built WithTraceSampling. All shards share one
// ring, so a sampled edge's mailbox, process and match events interleave
// here in recording order.
func (s *Sharded) TraceDump() []TraceEvent { return s.cfg.engine.Obs.Tracer.Dump() }

// PerShardMetrics snapshots every shard engine's raw counters in shard
// order (replicated edges included, match counts pre-deduplication), for
// operators watching partition skew.
func (s *Sharded) PerShardMetrics() []Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.PerShardMetrics()
}

// Close flushes the shard mailboxes, stops the workers and finishes every
// subscription (Done closes after the final delivery). Idempotent;
// subsequent mutating calls return ErrClosed.
func (s *Sharded) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	s.eng.Close()
	s.mu.Unlock()
	// With no subscriber ever attached there is no inner subscription to
	// propagate the drain; finish directly (idempotent otherwise).
	s.finishSubs()
	// eng.Close drained the merger, so every fanout — and its emission note —
	// has completed: the final checkpoint below covers all delivered matches,
	// and a graceful restart redelivers nothing.
	s.dur.close()
	return nil
}
