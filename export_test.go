package streamworks

// WithWALFS exposes the unexported filesystem-seam option to the external
// test package, so fault-injection tests can substitute
// internal/testutil/faultfs for the real disk.
var WithWALFS = withWALFS
