package streamworks_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/testutil/faultfs"
)

// durableEngine is the slice of the in-process backends the durability
// suite needs: the public Engine contract plus the durability introspection
// both Local and Sharded expose.
type durableEngine interface {
	streamworks.Engine
	Durability() streamworks.DurabilityStats
}

// engineMaker builds one in-process backend from options; the crash and
// degradation suites run once per backend through this seam.
type engineMaker struct {
	name string
	mk   func(opts ...streamworks.Option) durableEngine
}

func inProcessBackends() []engineMaker {
	return []engineMaker{
		{"local", func(opts ...streamworks.Option) durableEngine {
			return streamworks.New(opts...)
		}},
		{"sharded", func(opts ...streamworks.Option) durableEngine {
			return streamworks.NewSharded(append([]streamworks.Option{streamworks.WithShards(3)}, opts...)...)
		}},
	}
}

// collectSet returns a sink recording every delivered (query, signature)
// into set under mu; the sharded backend delivers from its merge goroutine,
// so collection must be locked.
func collectSet(mu *sync.Mutex, set gen.MatchSet) streamworks.MatchSink {
	return streamworks.SinkFunc(func(m streamworks.Match) {
		mu.Lock()
		set.AddKey(m.Query, m.Signature)
		mu.Unlock()
	})
}

func registerAll(t *testing.T, eng streamworks.Engine, w gen.Workload) {
	t.Helper()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
		}
	}
}

func streamBatches(t *testing.T, eng streamworks.Engine, w gen.Workload, from, to, batch int) {
	t.Helper()
	ctx := context.Background()
	for i := from; i < to; i += batch {
		j := min(i+batch, to)
		if err := eng.ProcessBatch(ctx, w.Edges[i:j]); err != nil {
			t.Fatalf("ProcessBatch at %d: %v", i, err)
		}
	}
}

// runCrashRestart streams w through a durable engine, freezes the
// filesystem mid-stream (the in-process stand-in for SIGKILL: everything
// already written stays on disk, nothing further can reach it), restarts
// from the same data dir with the real filesystem and finishes the stream.
// It returns the union of both runs' delivered match sets — which
// exactly-once-under-set-semantics says must equal an uninterrupted run's.
func runCrashRestart(t *testing.T, w gen.Workload, mk engineMaker) gen.MatchSet {
	t.Helper()
	dir := t.TempDir()
	ffs := faultfs.New()
	base := []streamworks.Option{
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithDataDir(dir),
		streamworks.WithFsyncPolicy("off"),
		streamworks.WithSnapshotEvery(8),
	}

	var mu sync.Mutex
	union := make(gen.MatchSet)
	sink := collectSet(&mu, union)

	const batch = 64
	crash := (len(w.Edges) / 2 / batch) * batch

	eng := mk.mk(append(base, streamworks.WithWALFS(ffs))...)
	registerAll(t, eng, w)
	sub, err := eng.Subscribe("", sink)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	streamBatches(t, eng, w, 0, crash, batch)
	if d := eng.Durability(); d.Mode != "ok" || d.Frames == 0 {
		t.Fatalf("pre-crash durability: %+v", d)
	}
	// Freeze the disk first, then tear the engine down: Close can no longer
	// checkpoint or snapshot, so the directory holds exactly what a SIGKILL
	// at this instant would have left.
	ffs.CrashNow()
	eng.Close()
	<-sub.Done()

	// Restart over the same directory. Recovery must have re-registered the
	// workload's queries from the log...
	eng2 := mk.mk(base...)
	defer eng2.Close()
	if err := eng2.RegisterQuery(context.Background(), w.Queries[0]); !errors.Is(err, streamworks.ErrDuplicateQuery) {
		t.Fatalf("re-registering %q after recovery: %v, want ErrDuplicateQuery", w.Queries[0].Name(), err)
	}
	if d := eng2.Durability(); d.Mode != "ok" {
		t.Fatalf("post-restart durability: %+v", d)
	}
	// ...and the first subscriber receives the backlog: matches derived
	// before the crash whose delivery was never acknowledged.
	sub2, err := eng2.Subscribe("", sink)
	if err != nil {
		t.Fatalf("Subscribe after restart: %v", err)
	}
	streamBatches(t, eng2, w, crash, len(w.Edges), batch)
	eng2.Close()
	<-sub2.Done()

	mu.Lock()
	defer mu.Unlock()
	return union
}

func TestCrashRecoveryExactlyOnceNetflow(t *testing.T) {
	w := acceptanceWorkload(t)
	ref, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no matches")
	}
	for _, mk := range inProcessBackends() {
		t.Run(mk.name, func(t *testing.T) {
			union := runCrashRestart(t, w, mk)
			if !union.Equal(ref) {
				t.Fatalf("crash-restart union diverged: %d matches, reference %d", len(union), len(ref))
			}
		})
	}
}

func TestCrashRecoveryExactlyOnceDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("drift crash-recovery soak; skipped with -short")
	}
	w := gen.BenchDriftWorkload(8000, 400, 20*time.Second)
	ref, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no matches")
	}
	for _, mk := range inProcessBackends() {
		t.Run(mk.name, func(t *testing.T) {
			union := runCrashRestart(t, w, mk)
			if !union.Equal(ref) {
				t.Fatalf("crash-restart union diverged: %d matches, reference %d", len(union), len(ref))
			}
		})
	}
}

// TestGracefulRestartNoRedelivery pins the stronger guarantee of a clean
// shutdown: Close checkpoints every delivered match, so a restart over the
// same directory redelivers nothing — strict exactly-once, not just
// exactly-once under set semantics.
func TestGracefulRestartNoRedelivery(t *testing.T) {
	w := acceptanceWorkload(t)
	ref, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, mk := range inProcessBackends() {
		t.Run(mk.name, func(t *testing.T) {
			dir := t.TempDir()
			base := []streamworks.Option{
				streamworks.WithEngineConfig(w.Engine),
				streamworks.WithDataDir(dir),
				streamworks.WithFsyncPolicy("off"),
			}
			var mu sync.Mutex
			first, second := make(gen.MatchSet), make(gen.MatchSet)

			const batch = 64
			half := (len(w.Edges) / 2 / batch) * batch
			eng := mk.mk(base...)
			registerAll(t, eng, w)
			sub, err := eng.Subscribe("", collectSet(&mu, first))
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			streamBatches(t, eng, w, 0, half, batch)
			eng.Close()
			<-sub.Done()

			eng2 := mk.mk(base...)
			defer eng2.Close()
			sub2, err := eng2.Subscribe("", collectSet(&mu, second))
			if err != nil {
				t.Fatalf("Subscribe after restart: %v", err)
			}
			// A graceful shutdown leaves no backlog: nothing may have been
			// delivered by the act of subscribing.
			mu.Lock()
			backlog := len(second)
			mu.Unlock()
			if backlog != 0 {
				t.Fatalf("graceful restart redelivered %d matches on subscribe", backlog)
			}
			streamBatches(t, eng2, w, half, len(w.Edges), batch)
			eng2.Close()
			<-sub2.Done()

			mu.Lock()
			defer mu.Unlock()
			union := make(gen.MatchSet)
			for k := range first {
				union[k] = struct{}{}
			}
			for k := range second {
				if _, dup := first[k]; dup {
					t.Errorf("match redelivered across graceful restart: %q", k)
				}
				union[k] = struct{}{}
			}
			if !union.Equal(ref) {
				t.Fatalf("graceful-restart union diverged: %d matches, reference %d", len(union), len(ref))
			}
		})
	}
}

// TestWALDegradationKeepsServing drives every injected disk pathology
// through a full workload: the WAL must flip to degraded mode, stop
// touching the disk, and the engine must keep detecting exactly the
// reference match set in memory.
func TestWALDegradationKeepsServing(t *testing.T) {
	w := acceptanceWorkload(t)
	ref, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	cases := []struct {
		name string
		opts func(ffs *faultfs.FS) []streamworks.Option
		arm  func(ffs *faultfs.FS)
	}{
		{
			name: "disk-full",
			arm:  func(ffs *faultfs.FS) { ffs.SetDiskFull(true) },
		},
		{
			name: "fsync-error",
			opts: func(*faultfs.FS) []streamworks.Option {
				return []streamworks.Option{streamworks.WithFsyncPolicy("always")}
			},
			arm: func(ffs *faultfs.FS) { ffs.FailFsync(errors.New("injected fsync failure")) },
		},
		{
			name: "short-write",
			arm:  func(ffs *faultfs.FS) { ffs.SetWriteBudget(512) },
		},
		{
			name: "bad-fsync-policy",
			opts: func(*faultfs.FS) []streamworks.Option {
				// Degraded from birth: the WAL never opens at all.
				return []streamworks.Option{streamworks.WithFsyncPolicy("bogus")}
			},
			arm: func(*faultfs.FS) {},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ffs := faultfs.New()
			opts := []streamworks.Option{
				streamworks.WithEngineConfig(w.Engine),
				streamworks.WithDataDir(t.TempDir()),
				streamworks.WithWALFS(ffs),
			}
			if tc.opts != nil {
				opts = append(opts, tc.opts(ffs)...)
			}
			eng := streamworks.New(opts...)
			defer eng.Close()
			registerAll(t, eng, w)
			var mu sync.Mutex
			set := make(gen.MatchSet)
			sub, err := eng.Subscribe("", collectSet(&mu, set))
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			// Arm the fault only after registration so the failure hits the
			// ingest path mid-stream, not the constructor.
			tc.arm(ffs)
			streamBatches(t, eng, w, 0, len(w.Edges), 64)
			if d := eng.Durability(); d.Mode != "degraded" {
				t.Fatalf("durability mode after %s: %q, want degraded (%+v)", tc.name, d.Mode, d)
			}
			eng.Close()
			<-sub.Done()
			if !set.Equal(ref) {
				t.Fatalf("degraded engine diverged: %d matches, reference %d", len(set), len(ref))
			}
		})
	}
}

// TestShortWriteLeavesRecoverableTornTail is the full fault → crash →
// recover arc: an injected short write leaves a torn frame on disk and
// degrades the engine; a restart over the directory truncates the torn
// tail, counts it, and still recovers everything up to the last whole
// frame.
func TestShortWriteLeavesRecoverableTornTail(t *testing.T) {
	w := acceptanceWorkload(t)
	dir := t.TempDir()
	ffs := faultfs.New()
	eng := streamworks.New(
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithDataDir(dir),
		streamworks.WithFsyncPolicy("off"),
		streamworks.WithWALFS(ffs),
	)
	registerAll(t, eng, w)
	// Enough budget for a couple of edge batches, then a frame is cut off
	// mid-write — the torn tail a real crash leaves.
	ffs.SetWriteBudget(4096)
	streamBatches(t, eng, w, 0, 512, 64)
	if d := eng.Durability(); d.Mode != "degraded" || d.AppendErrors == 0 {
		t.Fatalf("short write did not degrade: %+v", d)
	}
	eng.Close()

	eng2 := streamworks.New(
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithDataDir(dir),
		streamworks.WithFsyncPolicy("off"),
	)
	defer eng2.Close()
	d := eng2.Durability()
	if d.Mode != "ok" {
		t.Fatalf("recovery after torn tail: mode %q, want ok (%+v)", d.Mode, d)
	}
	if d.TornTailTruncations != 1 {
		t.Fatalf("torn-tail truncations: %d, want 1 (%+v)", d.TornTailTruncations, d)
	}
	// The registrations landed within budget, so recovery rebuilt them.
	if err := eng2.RegisterQuery(context.Background(), w.Queries[0]); !errors.Is(err, streamworks.ErrDuplicateQuery) {
		t.Fatalf("re-registering after torn-tail recovery: %v, want ErrDuplicateQuery", err)
	}
}

// TestShardedFlushBarrier pins the public Flush contract recovery depends
// on: after Flush returns, every match derived from previously ingested
// edges has been delivered to subscribers.
func TestShardedFlushBarrier(t *testing.T) {
	w := acceptanceWorkload(t)
	ref, _, err := gen.RunSingle(gen.Workload{
		Name: w.Name, Edges: w.Edges[:1500], Queries: w.Queries, Engine: w.Engine,
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	eng := streamworks.NewSharded(streamworks.WithEngineConfig(w.Engine), streamworks.WithShards(3))
	defer eng.Close()
	registerAll(t, eng, w)
	var mu sync.Mutex
	set := make(gen.MatchSet)
	if _, err := eng.Subscribe("", collectSet(&mu, set)); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	streamBatches(t, eng, w, 0, 1500, 64)
	if err := eng.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !set.Equal(ref) {
		t.Fatalf("after Flush: %d matches delivered, reference %d", len(set), len(ref))
	}
}
