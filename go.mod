module github.com/streamworks/streamworks

go 1.22
