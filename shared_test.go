package streamworks_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/gen"
)

// TestSharedPlansChurnUnderIngest races query register/unregister churn
// against live ingest on a sharded engine running the shared evaluation DAG.
// It pins the two churn guarantees at the public surface: matches of the
// stable queries are exactly those of a churn-free run (attach/detach of
// other queries never perturbs a co-resident query's emissions, even where
// DAG nodes are shared between stable and churned plans), and detaching the
// churned queries drops exactly the DAG nodes whose refcount fell to zero
// (the node count returns to the stable baseline). Run under -race in CI,
// it doubles as the concurrency check for the DAG registration path.
func TestSharedPlansChurnUnderIngest(t *testing.T) {
	w := gen.BenchManyQueriesWorkload(16, 2500, 120, 10*time.Second)
	// The stable set keeps matching throughout; the churn set is registered
	// and unregistered continuously while edges stream. News variants are
	// hub-free — the sharded router only broadcasts their edge types for
	// queries known before streaming (ErrBroadcastRequired otherwise) — so
	// they all stay stable. The first family cycle also stays stable so every
	// churned variant shares DAG structure with a co-resident stable query.
	stable, churn := w.Queries[:0:0], w.Queries[:0:0]
	for i, q := range w.Queries {
		if i < 8 || strings.HasPrefix(q.Name(), "news") {
			stable = append(stable, q)
		} else {
			churn = append(churn, q)
		}
	}
	if len(churn) == 0 {
		t.Fatalf("no churnable (hub-bearing) query variants in the workload")
	}

	run := func(withChurn bool) (gen.MatchSet, int) {
		eng := streamworks.NewSharded(
			streamworks.WithEngineConfig(w.Engine),
			streamworks.WithShards(2),
			streamworks.WithSharedPlans(true),
		)
		defer eng.Close()
		ctx := context.Background()
		for _, q := range stable {
			if err := eng.RegisterQuery(ctx, q); err != nil {
				t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
			}
		}
		base, err := eng.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if base.MQO == nil || base.MQO.Nodes == 0 {
			t.Fatalf("shared engine reports no DAG nodes after registration")
		}

		var mu sync.Mutex
		set := make(gen.MatchSet)
		sub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
			mu.Lock()
			set.AddKey(m.Query, m.Signature)
			mu.Unlock()
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()

		stop := make(chan struct{})
		churnDone := make(chan error, 1)
		if withChurn {
			go func() {
				defer close(churnDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					q := churn[i%len(churn)]
					if err := eng.RegisterQuery(ctx, q); err != nil {
						churnDone <- fmt.Errorf("churn register %s: %w", q.Name(), err)
						return
					}
					if err := eng.UnregisterQuery(ctx, q.Name()); err != nil {
						churnDone <- fmt.Errorf("churn unregister %s: %w", q.Name(), err)
						return
					}
				}
			}()
		} else {
			close(churnDone)
		}

		const batch = 250
		for i := 0; i < len(w.Edges); i += batch {
			j := min(i+batch, len(w.Edges))
			if err := eng.ProcessBatch(ctx, w.Edges[i:j]); err != nil {
				t.Fatalf("ProcessBatch at %d: %v", i, err)
			}
		}
		close(stop)
		if err := <-churnDone; err != nil {
			t.Fatal(err)
		}

		after, err := eng.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if after.MQO == nil {
			t.Fatalf("MQO stats vanished mid-run")
		}
		if after.MQO.Nodes != base.MQO.Nodes {
			t.Fatalf("DAG nodes after churn = %d, want the stable baseline %d (unregister must drop exactly the refcount-zero nodes)",
				after.MQO.Nodes, base.MQO.Nodes)
		}
		if after.MQO.Attachments != len(stable) {
			t.Fatalf("attachments after churn = %d, want %d", after.MQO.Attachments, len(stable))
		}

		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		<-sub.Done()
		// Keep only the stable queries' matches: churned queries legitimately
		// emit while attached (including window-limited backfill of live
		// edges), and that transient set is timing-dependent by design.
		mu.Lock()
		defer mu.Unlock()
		stableSet := make(gen.MatchSet)
		for k := range set {
			name := k[:strings.IndexByte(k, '\x1f')]
			for _, q := range stable {
				if q.Name() == name {
					stableSet[k] = struct{}{}
					break
				}
			}
		}
		return stableSet, base.MQO.Nodes
	}

	ref, refNodes := run(false)
	if len(ref) == 0 {
		t.Fatalf("churn-free run found no stable matches; workload proves nothing")
	}
	churned, churnedNodes := run(true)
	if refNodes != churnedNodes {
		t.Fatalf("baseline DAG size differs across runs: %d vs %d", refNodes, churnedNodes)
	}
	if !churned.Equal(ref) {
		t.Fatalf("stable queries' matches diverge under churn: got %d, want %d", len(churned), len(ref))
	}
}
