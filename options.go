package streamworks

import (
	"net/http"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/shard"
)

// config collects every backend's tunables; each constructor reads the
// fields that apply to it and ignores the rest.
type config struct {
	engine       core.Config
	shards       int
	shardBuffer  int
	advanceEvery time.Duration
	httpClient   *http.Client
}

func defaultConfig() config {
	return config{
		engine: core.DefaultConfig(),
		shards: shard.DefaultConfig().Shards,
	}
}

// Option customizes an engine constructor. Options that do not apply to the
// chosen backend are ignored (e.g. WithShards on New, WithRetention on
// Connect — a remote engine's window is fixed by the daemon).
type Option func(*config)

// WithRetention sets the sliding window width of the dynamic graph. Zero
// (the default) retains every edge; registrations with time windows widen
// retention automatically before streaming begins. In-process backends only.
func WithRetention(d time.Duration) Option {
	return func(c *config) { c.engine.Retention = d }
}

// WithSlack sets the tolerated out-of-order arrival lag. In-process
// backends only.
func WithSlack(d time.Duration) Option {
	return func(c *config) { c.engine.Slack = d }
}

// WithSummaries toggles continuous stream-statistics collection (degree,
// type and triad distributions) used by the selective query planner.
// In-process backends only; default on.
func WithSummaries(enabled bool) Option {
	return func(c *config) { c.engine.EnableSummaries = enabled }
}

// WithTriadSampling sets the 1-in-n triad sampling rate (0 disables triads).
// In-process backends only.
func WithTriadSampling(n int) Option {
	return func(c *config) { c.engine.TriadSampling = n }
}

// WithPruneInterval sets the number of processed edges between partial-match
// pruning sweeps. In-process backends only.
func WithPruneInterval(n int) Option {
	return func(c *config) { c.engine.PruneInterval = n }
}

// WithEngineConfig replaces the whole per-engine configuration at once, for
// embedders that already manage an EngineConfig. Later fine-grained options
// still apply on top. In-process backends only.
func WithEngineConfig(cfg EngineConfig) Option {
	return func(c *config) { c.engine = cfg }
}

// WithShards sets the number of engine shards for NewSharded (default 4,
// minimum 1). Ignored by the other backends.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShardBuffer sets the per-shard mailbox depth in messages for
// NewSharded (default 1024). Ignored by the other backends.
func WithShardBuffer(n int) Option {
	return func(c *config) { c.shardBuffer = n }
}

// WithAdvanceEvery sets the watermark-broadcast granularity for NewSharded:
// shards that did not receive an edge are sent an explicit time advance
// whenever observed stream time has moved at least this far. Zero picks a
// default; negative disables broadcasts. Ignored by the other backends.
func WithAdvanceEvery(d time.Duration) Option {
	return func(c *config) { c.advanceEvery = d }
}

// WithHTTPClient substitutes the http.Client Connect uses for every request.
// The client must not enforce an overall request timeout (subscriptions are
// long-lived streams); use per-call contexts instead. Connect only.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) { c.httpClient = hc }
}
