package streamworks

import (
	"net/http"
	"time"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/shard"
	"github.com/streamworks/streamworks/internal/wal"
)

// config collects every backend's tunables; each constructor reads the
// fields that apply to it and ignores the rest.
type config struct {
	engine       core.Config
	shards       int
	shardBuffer  int
	advanceEvery time.Duration
	httpClient   *http.Client
	transport    Transport
	// strategy and adaptive are the engine-wide registration defaults; each
	// RegisterQueryWith call can override them per query.
	strategy string
	adaptive bool
	// Trace-ring knobs (WithTraceSampling); the tracer itself is built by
	// finishObs once all options are applied, so ordering relative to
	// WithObservability does not matter.
	traceCapacity    int
	traceSampleEvery int
	tracePerSecond   int
	// Durability knobs (WithDataDir and friends). walFS is the filesystem
	// seam the fault-injection tests substitute; nil uses the real one.
	dataDir       string
	fsyncPolicy   string
	fsyncInterval time.Duration
	snapshotEvery int
	manualAck     bool
	walFS         wal.FS
}

// finishObs normalizes the observability config after the option loop: it
// pins the clock (so the public tier shares the engine tiers' timebase for
// its own stamps) and materializes the trace ring. Tracing requires
// observability to be on and a positive capacity, and respects a tracer the
// embedder already installed through WithEngineConfig.
func (c *config) finishObs() {
	if !c.engine.Obs.Enabled {
		return
	}
	if c.engine.Obs.Clock == nil {
		c.engine.Obs.Clock = obs.SystemClock
	}
	if c.engine.Obs.Tracer != nil || c.traceCapacity <= 0 {
		return
	}
	c.engine.Obs.Tracer = obs.NewTracer(c.traceCapacity, c.traceSampleEvery, c.tracePerSecond, c.engine.Obs.Clock)
}

func defaultConfig() config {
	return config{
		engine: core.DefaultConfig(),
		shards: shard.DefaultConfig().Shards,
	}
}

// registrationOptions resolves the engine defaults plus one call's
// RegisterOptions into the core option list the in-process backends pass to
// the engine (and the sharded front-end replicates to every shard).
func (c *config) registrationOptions(o RegisterOptions) []core.RegistrationOption {
	var opts []core.RegistrationOption
	strat := o.Strategy
	if strat == "" {
		strat = c.strategy
	}
	if strat != "" {
		opts = append(opts, core.WithStrategy(decompose.Strategy(strat)))
	}
	adaptive := c.adaptive
	switch o.Adaptive {
	case AdaptiveOn:
		adaptive = true
	case AdaptiveOff:
		adaptive = false
	}
	if adaptive {
		opts = append(opts, core.WithAdaptive(true))
	}
	return opts
}

// Option customizes an engine constructor. Options that do not apply to the
// chosen backend are ignored (e.g. WithShards on New, WithRetention on
// Connect — a remote engine's window is fixed by the daemon).
type Option func(*config)

// WithRetention sets the sliding window width of the dynamic graph. Zero
// (the default) retains every edge; registrations with time windows widen
// retention automatically before streaming begins. In-process backends only.
func WithRetention(d time.Duration) Option {
	return func(c *config) { c.engine.Retention = d }
}

// WithSlack sets the tolerated out-of-order arrival lag. In-process
// backends only.
func WithSlack(d time.Duration) Option {
	return func(c *config) { c.engine.Slack = d }
}

// WithSummaries toggles continuous stream-statistics collection (degree,
// type and triad distributions) used by the selective query planner.
// In-process backends only; default on.
func WithSummaries(enabled bool) Option {
	return func(c *config) { c.engine.EnableSummaries = enabled }
}

// WithTriadSampling sets the 1-in-n triad sampling rate (0 disables triads).
// In-process backends only.
func WithTriadSampling(n int) Option {
	return func(c *config) { c.engine.TriadSampling = n }
}

// WithPruneInterval sets the number of processed edges between partial-match
// pruning sweeps. In-process backends only.
func WithPruneInterval(n int) Option {
	return func(c *config) { c.engine.PruneInterval = n }
}

// WithEngineConfig replaces the whole per-engine configuration at once, for
// embedders that already manage an EngineConfig. Later fine-grained options
// still apply on top. In-process backends only.
func WithEngineConfig(cfg EngineConfig) Option {
	return func(c *config) { c.engine = cfg }
}

// WithShards sets the number of engine shards for NewSharded (default 4,
// minimum 1). Ignored by the other backends.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShardBuffer sets the per-shard mailbox depth in messages for
// NewSharded (default 1024). Ignored by the other backends.
func WithShardBuffer(n int) Option {
	return func(c *config) { c.shardBuffer = n }
}

// WithAdvanceEvery sets the watermark-broadcast granularity for NewSharded:
// shards that did not receive an edge are sent an explicit time advance
// whenever observed stream time has moved at least this far. Zero picks a
// default; negative disables broadcasts. Ignored by the other backends.
func WithAdvanceEvery(d time.Duration) Option {
	return func(c *config) { c.advanceEvery = d }
}

// WithAdaptivePlanning makes every query registered through the engine
// adapt its SJ-Tree decomposition to the live stream statistics: the engine
// periodically re-costs each running plan against a freshly computed one
// and hot-swaps when selectivity drift crosses the hysteresis threshold
// (see WithReplanEvery/WithReplanThreshold/WithReplanCooldown). Swaps are
// invisible in the match stream — no match is lost or duplicated across the
// boundary — and visible in Metrics (Replans, per-query PlanGeneration).
// Per-query override: RegisterQueryWith with RegisterOptions.Adaptive.
// On Connect the setting travels with each registration; the daemon's
// engine does the re-planning. In-process backends need summaries enabled
// (the default) for drift detection to have statistics to work from.
func WithAdaptivePlanning(enabled bool) Option {
	return func(c *config) { c.adaptive = enabled }
}

// WithPlanStrategy sets the default decomposition strategy for queries
// registered through the engine: one of PlanStrategies() ("selective",
// "lazy", "eager", "balanced"; the default is selective). Unknown names
// fail at RegisterQuery. Per-query override: RegisterQueryWith.
func WithPlanStrategy(name string) Option {
	return func(c *config) { c.strategy = name }
}

// WithReplanEvery sets the number of processed edges between adaptive
// re-planning drift checks (default 2048). In-process backends only.
func WithReplanEvery(n int) Option {
	return func(c *config) { c.engine.Replan.CheckEvery = n }
}

// WithReplanThreshold sets the hysteresis ratio for adaptive re-planning:
// the running plan's estimated cost must exceed a fresh plan's by at least
// this factor before a hot-swap fires (default 2.0; values <= 1 are
// rejected in favor of the default). In-process backends only.
func WithReplanThreshold(ratio float64) Option {
	return func(c *config) { c.engine.Replan.Threshold = ratio }
}

// WithReplanCooldown sets the minimum stream time between plan swaps of one
// query (default 10s; negative disables the cooldown). In-process backends
// only.
func WithReplanCooldown(d time.Duration) Option {
	return func(c *config) { c.engine.Replan.Cooldown = d }
}

// WithSharedPlans switches in-process backends onto the multi-query
// shared-plan path: instead of one SJ-Tree per registered query, all queries
// fold into a single evaluation DAG in which structurally identical
// subpatterns (shared leaf primitives, wedges, larger common subtrees) are
// computed once per arriving edge and fanned out to every query containing
// them. Emission semantics are unchanged — each query's match stream is
// byte-identical to what per-query mode produces for queries registered
// before ingestion — so the switch is purely a cost optimization for
// workloads with many overlapping standing queries. Metrics gain a DAG
// section (node count, shared nodes, shared hits); the daemon exposes the
// same switch via the -shared-plans flag. Default off.
func WithSharedPlans(enabled bool) Option {
	return func(c *config) { c.engine.SharedPlans = enabled }
}

// WithObservability turns the observability layer on for in-process
// backends: per-segment latency histograms (local search, SJ-tree join,
// shard mailbox wait, dispatch), the stream-time detection-lag histogram,
// and per-SJ-tree-node statistics in Metrics. Snapshot the collected data
// with Local.ObsSnapshot / Sharded.ObsSnapshot. Default off; when off every
// instrumentation site reduces to a single branch.
func WithObservability(enabled bool) Option {
	return func(c *config) { c.engine.Obs.Enabled = enabled }
}

// WithTraceSampling adds a sampled edge-journey trace ring to an
// observability-enabled engine (WithObservability): events for one edge in
// sampleEvery (selected deterministically by edge ID, so every tier samples
// the same edges) are kept in a ring of the last capacity events, recording
// at most perSecond events per wall second (0 = 1000). capacity or
// sampleEvery <= 0 disables tracing. Dump the ring with TraceDump.
func WithTraceSampling(capacity, sampleEvery, perSecond int) Option {
	return func(c *config) {
		c.traceCapacity = capacity
		c.traceSampleEvery = sampleEvery
		c.tracePerSecond = perSecond
	}
}

// WithDataDir enables durability for in-process backends: every ingested
// batch, registration and watermark advance is appended to a segmented
// write-ahead log under dir before processing, periodic snapshots bound
// replay time, and a restart pointing at the same dir rebuilds the
// retained window, registrations and partial-match state, suppressing
// matches already delivered before the crash. Empty (the default)
// disables durability. If the directory cannot be opened the engine still
// starts, in-memory only, reporting durability "degraded".
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithFsyncPolicy picks when WAL appends are forced to stable storage:
// "always" (sync every frame), "interval" (group commit, the default) or
// "off" (page cache only — still survives a process crash, not power
// loss). Unknown names degrade durability at construction. Requires
// WithDataDir.
func WithFsyncPolicy(policy string) Option {
	return func(c *config) { c.fsyncPolicy = policy }
}

// WithFsyncInterval sets the group-commit interval for the "interval"
// fsync policy (default 50ms). Requires WithDataDir.
func WithFsyncInterval(d time.Duration) Option {
	return func(c *config) { c.fsyncInterval = d }
}

// WithSnapshotEvery snapshots the retained window, registrations and
// emitted-set every n ingested batches, dropping the log segments the
// snapshot covers (default 4096; negative disables periodic snapshots —
// Close still takes a final one). Requires WithDataDir.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.snapshotEvery = n }
}

// WithManualDeliveryAck defers emitted-match acknowledgment to the
// embedder: the engine stops treating a subscription sink's return as
// proof of delivery, and the embedder must call AckDelivered once a match
// has truly reached its consumer (e.g. the serving tier flushed it to the
// subscriber's socket). Without the ack a match is redelivered after a
// crash; with it the match is suppressed on recovery. For asynchronous
// delivery pipelines only; synchronous embedders should keep the default.
func WithManualDeliveryAck(enabled bool) Option {
	return func(c *config) { c.manualAck = enabled }
}

// withWALFS substitutes the WAL's filesystem, for fault-injection tests.
func withWALFS(fs wal.FS) Option {
	return func(c *config) { c.walFS = fs }
}

// WithHTTPClient substitutes the http.Client Connect uses for every request.
// The client must not enforce an overall request timeout (subscriptions are
// long-lived streams); use per-call contexts instead. Connect only.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) { c.httpClient = hc }
}

// Transport selects the wire encoding a Remote engine uses for ingest and
// match subscriptions. Connect only.
type Transport string

const (
	// TransportNDJSON is the default text transport: one JSON object per
	// line, human-readable, curl-able.
	TransportNDJSON Transport = "ndjson"
	// TransportBinary is the length-prefixed binary frame transport:
	// smaller bodies, no per-edge JSON encode/decode, measurably higher
	// daemon throughput. Match sets are byte-identical across transports
	// (enforced by the transport-equivalence matrix).
	TransportBinary Transport = "binary"
)

// WithTransport selects the Remote wire encoding (default TransportNDJSON).
// Connect only.
func WithTransport(t Transport) Option {
	return func(c *config) { c.transport = t }
}
