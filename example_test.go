package streamworks_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/server"
)

// echoQuery is a two-edge pattern: a ping and its reply between the same
// pair of hosts within one minute.
const echoQuery = `query icmp-echo
window 1m
vertex a : Host
vertex b : Host
edge a -[icmp-req]-> b
edge b -[icmp-reply]-> a
`

// echoEdges returns a request/reply pair that completes the pattern.
func echoEdges(base streamworks.Timestamp) []streamworks.StreamEdge {
	return []streamworks.StreamEdge{
		{
			Edge:       streamworks.Edge{ID: 1, Source: 10, Target: 20, Type: "icmp-req", Timestamp: base},
			SourceType: "Host", TargetType: "Host",
		},
		{
			Edge:       streamworks.Edge{ID: 2, Source: 20, Target: 10, Type: "icmp-reply", Timestamp: base.Add(time.Second)},
			SourceType: "Host", TargetType: "Host",
		},
	}
}

// ExampleNew runs a continuous query on the in-process single engine:
// register, subscribe, stream — matches are pushed to the sink as the edges
// that complete them arrive.
func ExampleNew() {
	ctx := context.Background()
	q, err := streamworks.ParseQuery(echoQuery)
	if err != nil {
		panic(err)
	}

	eng := streamworks.New(streamworks.WithRetention(time.Minute))
	defer eng.Close()
	if err := eng.RegisterQuery(ctx, q); err != nil {
		panic(err)
	}
	sub, err := eng.Subscribe("icmp-echo", streamworks.SinkFunc(func(m streamworks.Match) {
		fmt.Printf("%s matched: %d vertices bound, %d edges\n", m.Query, len(m.Bindings), len(m.EdgeIDs))
	}))
	if err != nil {
		panic(err)
	}

	base := streamworks.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))
	if err := eng.ProcessBatch(ctx, echoEdges(base)); err != nil {
		panic(err)
	}
	eng.Close()
	<-sub.Done()
	// Output: icmp-echo matched: 2 vertices bound, 2 edges
}

// ExampleNewSharded runs the same workload on the sharded in-process
// backend: identical API, matches deduplicated across shards and pushed
// from the merge goroutine.
func ExampleNewSharded() {
	ctx := context.Background()
	q, err := streamworks.ParseQuery(echoQuery)
	if err != nil {
		panic(err)
	}

	eng := streamworks.NewSharded(streamworks.WithShards(2), streamworks.WithRetention(time.Minute))
	defer eng.Close()
	if err := eng.RegisterQuery(ctx, q); err != nil {
		panic(err)
	}
	matches := 0
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(streamworks.Match) { matches++ }))
	if err != nil {
		panic(err)
	}

	base := streamworks.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))
	if err := eng.ProcessBatch(ctx, echoEdges(base)); err != nil {
		panic(err)
	}
	eng.Close()
	<-sub.Done() // matches is safe to read once Done closes
	fmt.Printf("sharded run delivered %d deduplicated match(es)\n", matches)
	// Output: sharded run delivered 1 deduplicated match(es)
}

// ExampleConnect drives a streamworksd daemon over HTTP through the same
// Engine interface. Here the daemon runs in-process on an httptest
// listener; in production it is `streamworksd -addr :8090`.
func ExampleConnect() {
	ctx := context.Background()
	daemon := server.New(server.Config{})
	hs := httptest.NewServer(daemon)
	defer hs.Close()

	eng, err := streamworks.Connect(ctx, hs.URL)
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	fmt.Printf("connected: api %s\n", eng.ServerInfo().Version)

	q, err := streamworks.ParseQuery(echoQuery)
	if err != nil {
		panic(err)
	}
	if err := eng.RegisterQuery(ctx, q); err != nil {
		panic(err)
	}
	sub, err := eng.Subscribe("icmp-echo", streamworks.SinkFunc(func(m streamworks.Match) {
		fmt.Printf("%s matched over HTTP\n", m.Query)
	}))
	if err != nil {
		panic(err)
	}

	base := streamworks.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC))
	if err := eng.ProcessBatch(ctx, echoEdges(base)); err != nil {
		panic(err)
	}
	daemon.Close() // drain: the subscription ends after its final delivery
	<-sub.Done()
	// Output:
	// connected: api v1
	// icmp-echo matched over HTTP
}
