package streamworks_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/gen"
)

// TestAdaptiveShardedSoakDrift is the short soak for adaptive re-planning
// on the scale-out path: the drift workload streamed through the public
// sharded backend with adaptive planning on must (a) actually re-plan, (b)
// detect exactly the match set a frozen-plan run detects, and (c) keep its
// metrics self-consistent. Skipped under -short; CI runs it (with -race)
// on every push.
func TestAdaptiveShardedSoakDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	w := gen.BenchDriftWorkload(40_000, 800, 20*time.Second)

	frozen, _, err := gen.RunSharded(w, 3)
	if err != nil {
		t.Fatalf("frozen run: %v", err)
	}
	adaptive, m, err := gen.RunSharded(w, 3, streamworks.WithAdaptivePlanning(true))
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}

	if !adaptive.Equal(frozen) {
		t.Fatalf("adaptive sharded run diverged: %d matches vs %d frozen", len(adaptive), len(frozen))
	}
	if len(adaptive) == 0 {
		t.Fatalf("soak produced no matches")
	}
	if m.Replans == 0 {
		t.Fatalf("no replans fired across %d drift checks:\n%s", m.ReplanChecks, m)
	}
	if m.ReplanEdgesReplayed == 0 {
		t.Fatalf("replans fired but no window replay recorded:\n%s", m)
	}
	// Metrics self-consistency: every query is reported, marked adaptive,
	// with a plan generation matching its replan count; the aggregated
	// replan total is the per-query sum; deduplicated match totals add up.
	if int(m.Registrations) != len(w.Queries) || len(m.Queries) != len(w.Queries) {
		t.Fatalf("registrations inconsistent: %d/%d of %d", m.Registrations, len(m.Queries), len(w.Queries))
	}
	var perQueryReplans, perQueryMatches uint64
	for _, q := range m.Queries {
		if !q.Adaptive {
			t.Fatalf("query %s not adaptive in metrics", q.Name)
		}
		if q.PlanGeneration < 1 {
			t.Fatalf("query %s has no plan generation", q.Name)
		}
		if q.PlanNodes == 0 || q.PlanDepth == 0 {
			t.Fatalf("query %s missing plan shape: %+v", q.Name, q)
		}
		perQueryReplans += q.Replans
		perQueryMatches += q.Matches
	}
	if perQueryReplans != m.Replans {
		t.Fatalf("per-query replans %d != total %d", perQueryReplans, m.Replans)
	}
	if perQueryMatches != m.MatchesEmitted || m.MatchesEmitted != uint64(len(adaptive)) {
		t.Fatalf("match accounting inconsistent: per-query %d, emitted %d, set %d",
			perQueryMatches, m.MatchesEmitted, len(adaptive))
	}
}

// TestReplanRacesUnregisterAndClose drives the drift workload with
// adaptive planning on while another goroutine unregisters and re-registers
// a query and a third closes the engine mid-stream. Run under -race in CI:
// the point is that replan ticks (which rebuild trees and replay windows on
// the shard workers) serialize safely against the control plane. Errors
// from the losing side of each race (ErrClosed, unknown query) are
// expected; data races and deadlocks are the failure mode.
func TestReplanRacesUnregisterAndClose(t *testing.T) {
	w := gen.BenchDriftWorkload(8_000, 300, 5*time.Second)
	eng := streamworks.NewSharded(
		streamworks.WithEngineConfig(w.Engine),
		streamworks.WithShards(3),
		streamworks.WithAdaptivePlanning(true),
	)
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := eng.Subscribe("", streamworks.SinkFunc(func(streamworks.Match) {}))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Stream in chunks; ErrClosed just means the closer won the race.
		for i := 0; i < len(w.Edges); i += 256 {
			end := min(i+256, len(w.Edges))
			if err := eng.ProcessBatch(ctx, w.Edges[i:end]); err != nil {
				if errors.Is(err, streamworks.ErrClosed) {
					return
				}
				t.Errorf("ProcessBatch: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// Churn a hub-ful query's registration while replans tick. Failures
		// are fine (duplicate/unknown under race; hub-free guard does not
		// apply to smurf-ddos) — crashes and races are not.
		q := gen.SmurfQuery(5 * time.Second)
		for i := 0; i < 20; i++ {
			_ = eng.UnregisterQuery(ctx, q.Name())
			_ = eng.RegisterQuery(ctx, q)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	<-sub.Done()
	// The engine must still answer metrics after the dust settles.
	if _, err := eng.Metrics(ctx); err != nil {
		t.Fatalf("Metrics after close: %v", err)
	}
}
