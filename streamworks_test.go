package streamworks_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
)

func acceptanceWorkload(t *testing.T) gen.Workload {
	t.Helper()
	cfg := gen.NetFlowConfig{
		Hosts:       250,
		Servers:     25,
		Edges:       3000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        42,
	}
	return gen.NetFlowWorkload(cfg, time.Minute)
}

// backendRun drives one engine through the whole workload via only the
// public interface: register every query, subscribe once to everything and
// once to a single query, stream the edges, then drain. finish is called
// between the last ProcessBatch and the Done waits, for backends whose
// drain is external (the remote daemon).
func backendRun(t *testing.T, eng streamworks.Engine, w gen.Workload, filterQuery string, finish func()) (all, filtered gen.MatchSet) {
	t.Helper()
	ctx := context.Background()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
		}
	}
	// Registering the same query twice reports ErrDuplicateQuery on every
	// backend.
	if err := eng.RegisterQuery(ctx, w.Queries[0]); !errors.Is(err, streamworks.ErrDuplicateQuery) {
		t.Fatalf("duplicate RegisterQuery: %v, want ErrDuplicateQuery", err)
	}
	// Subscribing to an unknown query fails fast on every backend.
	if _, err := eng.Subscribe("no-such-query", streamworks.SinkFunc(func(streamworks.Match) {})); !errors.Is(err, streamworks.ErrUnknownQuery) {
		t.Fatalf("Subscribe(unknown): %v, want ErrUnknownQuery", err)
	}

	all, filtered = make(gen.MatchSet), make(gen.MatchSet)
	subAll, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		all.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		t.Fatalf("Subscribe(all): %v", err)
	}
	subOne, err := eng.Subscribe(filterQuery, streamworks.SinkFunc(func(m streamworks.Match) {
		if m.Query != filterQuery {
			t.Errorf("filtered subscription delivered %q", m.Query)
		}
		filtered.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		t.Fatalf("Subscribe(%s): %v", filterQuery, err)
	}

	const batch = 500
	for i := 0; i < len(w.Edges); i += batch {
		j := min(i+batch, len(w.Edges))
		if err := eng.ProcessBatch(ctx, w.Edges[i:j]); err != nil {
			t.Fatalf("ProcessBatch at %d: %v", i, err)
		}
	}
	if finish != nil {
		// External drain (the remote daemon): subscriptions end on their own
		// once the server flushes, so wait for them before closing the
		// engine — Close on a Remote tears streams down abortively.
		finish()
		<-subAll.Done()
		<-subOne.Done()
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	} else {
		// In-process backends: Close is the drain; Done follows it.
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		<-subAll.Done()
		<-subOne.Done()
	}
	if err := subAll.Err(); err != nil {
		t.Fatalf("all-matches subscription ended with error: %v", err)
	}
	if err := subOne.Err(); err != nil {
		t.Fatalf("filtered subscription ended with error: %v", err)
	}

	// Misuse after Close is an error, not a panic, on every backend.
	if err := eng.Process(ctx, w.Edges[0]); !errors.Is(err, streamworks.ErrClosed) {
		t.Fatalf("Process after Close: %v, want ErrClosed", err)
	}
	if err := eng.RegisterQuery(ctx, w.Queries[0]); !errors.Is(err, streamworks.ErrClosed) {
		t.Fatalf("RegisterQuery after Close: %v, want ErrClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	return all, filtered
}

// TestAllBackendsIdenticalMatchSets is the acceptance test for the public
// API: the same netflow workload flows through all three backends — New,
// NewSharded, and Connect against an httptest daemon — exclusively through
// the streamworks.Engine interface, and every backend must produce the
// identical deduplicated match set; a per-query Subscribe must deliver
// exactly that query's matches on each backend.
func TestAllBackendsIdenticalMatchSets(t *testing.T) {
	w := acceptanceWorkload(t)
	const filterQuery = "smurf-ddos"

	local := streamworks.New(streamworks.WithEngineConfig(w.Engine))
	wantAll, wantFiltered := backendRun(t, local, w, filterQuery, nil)
	if len(wantAll) == 0 || len(wantFiltered) == 0 {
		t.Fatalf("degenerate workload: %d total / %d filtered matches", len(wantAll), len(wantFiltered))
	}
	// The filtered set must be exactly the filter query's slice of the full
	// set (and in particular non-trivial in both directions).
	if len(wantFiltered) >= len(wantAll) {
		t.Fatalf("filtered set (%d) not a strict subset of all (%d)", len(wantFiltered), len(wantAll))
	}

	sharded := streamworks.NewSharded(streamworks.WithEngineConfig(w.Engine), streamworks.WithShards(4))
	gotAll, gotFiltered := backendRun(t, sharded, w, filterQuery, nil)
	if !gotAll.Equal(wantAll) {
		t.Fatalf("sharded: %d matches, local %d", len(gotAll), len(wantAll))
	}
	if !gotFiltered.Equal(wantFiltered) {
		t.Fatalf("sharded filtered: %d matches, local %d", len(gotFiltered), len(wantFiltered))
	}

	srv := server.New(server.Config{
		Shard:            shard.Config{Shards: 3, Engine: w.Engine},
		SubscriberBuffer: 16384,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	remote, err := streamworks.Connect(context.Background(), hs.URL)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if info := remote.ServerInfo(); info.Shards != 3 || info.Version == "" ||
		info.GoVersion != runtime.Version() || info.ObsEnabled {
		t.Fatalf("ServerInfo = %+v, want shards=3 go_version=%s obs_enabled=false",
			info, runtime.Version())
	}
	// The daemon drain is what ends remote subscriptions; trigger it after
	// the last batch has been routed.
	gotAll, gotFiltered = backendRun(t, remote, w, filterQuery, srv.Close)
	if !gotAll.Equal(wantAll) {
		t.Fatalf("remote: %d matches, local %d", len(gotAll), len(wantAll))
	}
	if !gotFiltered.Equal(wantFiltered) {
		t.Fatalf("remote filtered: %d matches, local %d", len(gotFiltered), len(wantFiltered))
	}
}

// TestSubscriptionCloseStopsDelivery checks that closing one subscription
// does not disturb the engine or other subscriptions.
func TestSubscriptionCloseStopsDelivery(t *testing.T) {
	w := acceptanceWorkload(t)
	ctx := context.Background()
	eng := streamworks.NewSharded(streamworks.WithEngineConfig(w.Engine), streamworks.WithShards(2))
	defer eng.Close()
	for _, q := range w.Queries {
		if err := eng.RegisterQuery(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	kept := make(gen.MatchSet)
	keptSub, err := eng.Subscribe("", streamworks.SinkFunc(func(m streamworks.Match) {
		kept.AddKey(m.Query, m.Signature)
	}))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := eng.Subscribe("", streamworks.SinkFunc(func(streamworks.Match) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := dropped.Close(); err != nil {
		t.Fatalf("Subscription.Close: %v", err)
	}
	<-dropped.Done()
	if err := dropped.Close(); err != nil {
		t.Fatalf("second Subscription.Close: %v", err)
	}
	if err := eng.ProcessBatch(ctx, w.Edges); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-keptSub.Done()
	if len(kept) == 0 {
		t.Fatal("surviving subscription received nothing")
	}
	m, err := eng.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics after Close: %v", err)
	}
	if m.MatchesEmitted != uint64(len(kept)) {
		t.Fatalf("MatchesEmitted = %d, want %d", m.MatchesEmitted, len(kept))
	}
}

// TestCloseSubscriptionFromSink checks the natural "deliver once then
// unsubscribe" pattern: a sink closing its own subscription must not
// deadlock or panic on any in-process backend, and delivery to it stops.
func TestCloseSubscriptionFromSink(t *testing.T) {
	w := acceptanceWorkload(t)
	ctx := context.Background()
	backends := map[string]streamworks.Engine{
		"local":   streamworks.New(streamworks.WithEngineConfig(w.Engine)),
		"sharded": streamworks.NewSharded(streamworks.WithEngineConfig(w.Engine), streamworks.WithShards(2)),
	}
	for name, eng := range backends {
		t.Run(name, func(t *testing.T) {
			defer eng.Close()
			for _, q := range w.Queries {
				if err := eng.RegisterQuery(ctx, q); err != nil {
					t.Fatal(err)
				}
			}
			var sub streamworks.Subscription
			var got atomic.Int64
			sub, err := eng.Subscribe("", streamworks.SinkFunc(func(streamworks.Match) {
				got.Add(1)
				sub.Close() // unsubscribe from inside the sink
			}))
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- eng.ProcessBatch(ctx, w.Edges) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("ProcessBatch: %v", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("ProcessBatch deadlocked on a sink that closes its own subscription")
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			<-sub.Done()
			// Exactly-once is not promised (a delivery may already be in
			// flight when Close lands), but delivery must stop almost
			// immediately rather than continue for the whole stream.
			if n := got.Load(); n == 0 || n > 4 {
				t.Fatalf("sink saw %d matches after closing itself, want 1 (a few tolerated)", n)
			}
		})
	}
}

// TestLocalContextCancellation checks ctx is honored on blocking calls.
func TestLocalContextCancellation(t *testing.T) {
	w := acceptanceWorkload(t)
	eng := streamworks.New(streamworks.WithEngineConfig(w.Engine))
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.ProcessBatch(ctx, w.Edges); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProcessBatch with canceled ctx: %v", err)
	}
	if err := eng.RegisterQuery(ctx, w.Queries[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RegisterQuery with canceled ctx: %v", err)
	}
}
