// Package streamworks is the public API of the StreamWorks continuous graph
// query system (Choudhury et al., SIGMOD 2013): register graph queries once,
// stream timestamped edges in, and have complete matches pushed to you as
// the stream evolves.
//
// One Engine interface fronts three backends:
//
//   - New: a single-threaded in-process engine (wraps the core engine).
//   - NewSharded: an in-process engine parallelized across hash partitions
//     of the vertex space (wraps the sharded front-end).
//   - Connect: a remote engine served by a streamworksd daemon over HTTP
//     (wraps the typed client).
//
// All three deliver matches the same way: per-query push subscriptions.
// Subscribe registers a MatchSink for one query (or all), the engine invokes
// it for every complete deduplicated match, and Done on the returned
// Subscription closes after the final delivery. There is no polling surface
// and no scratch-buffer aliasing to get wrong: every Match handed to a sink
// is an independent value, safe to retain.
//
// Engines are safe for concurrent use. Close is idempotent; Process after
// Close returns ErrClosed instead of panicking; the context passed to
// blocking calls bounds them.
package streamworks

import (
	"context"
	"errors"
	"time"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/decompose"
	"github.com/streamworks/streamworks/internal/export"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/query"
)

// Re-exported data types. These alias the engine's own types, so values flow
// between the public API and the internal packages without conversion while
// external importers can still name every type they need.
type (
	// Query is a continuous graph query: a small pattern graph of typed,
	// attribute-constrained vertices and edges with an optional time window.
	// Build one with ParseQuery (the text DSL) or the internal builder.
	Query = query.Graph

	// StreamEdge is the unit of arrival: an edge plus endpoint metadata.
	// Sources feeding a sharded or remote engine must populate SourceType/
	// TargetType (and attributes) on every edge, not only on a vertex's
	// first appearance — shards see disjoint subsets of the stream.
	StreamEdge = graph.StreamEdge

	// Edge is a directed, typed, timestamped, attributed data-graph edge.
	Edge = graph.Edge

	// VertexID identifies a data-graph vertex; IDs are assigned by the
	// stream source.
	VertexID = graph.VertexID

	// EdgeID identifies a data-graph edge, unique across the whole stream.
	EdgeID = graph.EdgeID

	// Timestamp is nanoseconds since the Unix epoch; only differences and
	// ordering matter to the engine.
	Timestamp = graph.Timestamp

	// Metrics is a snapshot of engine counters, including per-query detail.
	// For a sharded engine, work counters are summed over shards (and so
	// include replicated edges) while match counts are post-deduplication.
	Metrics = core.Metrics

	// EngineConfig is the low-level per-engine configuration. Most callers
	// use the functional options instead; WithEngineConfig accepts a full
	// EngineConfig for embedders that manage one themselves.
	EngineConfig = core.Config

	// Match is one complete match, resolved for consumption: the query
	// name, detection and span timestamps, the variable bindings, the data
	// edge IDs, and a canonical Signature that identifies the match across
	// engines, runs and the wire (equal (Query, Signature) ⇔ same match).
	Match = export.MatchReport

	// ServerInfo describes a remote daemon, as reported by its health
	// endpoint.
	ServerInfo = api.HealthResponse

	// ObsSnapshot is a point-in-time copy of an engine's observability
	// registry — counters plus per-segment latency histograms with summary
	// statistics — as returned by Local.ObsSnapshot and Sharded.ObsSnapshot
	// when the engine was built WithObservability.
	ObsSnapshot = obs.Snapshot

	// TraceEvent is one sampled edge-journey event from the trace ring
	// (WithTraceSampling), as returned by TraceDump.
	TraceEvent = obs.TraceEvent
)

// ParseQuery parses a query written in the text DSL:
//
//	query smurf-ddos
//	window 30s
//	vertex atk : Host
//	vertex amp : Host
//	vertex vic : Host
//	edge atk -[icmp-req]-> amp
//	edge amp -[icmp-reply]-> vic
func ParseQuery(dsl string) (*Query, error) { return query.ParseString(dsl) }

// FormatQuery renders q back into the text DSL accepted by ParseQuery.
// ParseQuery(FormatQuery(q)) is structurally identical to q.
func FormatQuery(q *Query) string { return query.Format(q) }

// TimestampFromTime converts a wall-clock time into a stream Timestamp.
func TimestampFromTime(t time.Time) Timestamp { return graph.TimestampFromTime(t) }

// API errors. Backend-specific failures (plan errors, transport errors) are
// returned as-is; these sentinels cover the conditions every backend shares,
// and errors.Is matches them across all three.
var (
	// ErrClosed is returned by every mutating call after Close.
	ErrClosed = errors.New("streamworks: engine closed")
	// ErrDuplicateQuery is returned when a query with the same name is
	// already registered.
	ErrDuplicateQuery = core.ErrDuplicateQuery
	// ErrUnknownQuery is returned by UnregisterQuery and Subscribe for
	// names that are not registered.
	ErrUnknownQuery = core.ErrUnknownQuery
	// ErrNilQuery is returned by RegisterQuery(nil).
	ErrNilQuery = core.ErrNilQuery
)

// AdaptiveMode selects per-query adaptive re-planning behaviour in
// RegisterOptions, three-valued so a registration can defer to the engine's
// WithAdaptivePlanning default or override it either way.
type AdaptiveMode int

const (
	// AdaptiveDefault inherits the engine's WithAdaptivePlanning setting.
	AdaptiveDefault AdaptiveMode = iota
	// AdaptiveOn opts this query into adaptive re-planning.
	AdaptiveOn
	// AdaptiveOff pins this query to its registration-time plan.
	AdaptiveOff
)

// RegisterOptions carries the per-query knobs of RegisterQueryWith. The
// zero value means "engine defaults" and makes RegisterQueryWith equivalent
// to RegisterQuery.
type RegisterOptions struct {
	// Strategy names the decomposition strategy for this query (one of
	// PlanStrategies); empty uses the engine default.
	Strategy string
	// Adaptive overrides the engine's adaptive-planning default.
	Adaptive AdaptiveMode
}

// PlanStrategies lists the decomposition strategy names accepted by
// WithPlanStrategy and RegisterOptions.Strategy, in a stable order. The
// first entry, "selective" (the paper's selectivity-ordered decomposition),
// is the default.
func PlanStrategies() []string {
	ss := decompose.Strategies()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = string(s)
	}
	return out
}

// MatchSink consumes pushed matches. OnMatch is invoked sequentially per
// subscription, on an engine-owned goroutine (or the caller's, for the
// single-threaded backend): implementations must be fast and must not call
// back into the engine, or they stall match delivery — and eventually
// ingestion — behind themselves.
type MatchSink interface {
	OnMatch(Match)
}

// SinkFunc adapts a plain function to MatchSink.
type SinkFunc func(Match)

// OnMatch implements MatchSink.
func (f SinkFunc) OnMatch(m Match) { f(m) }

// Subscription is a live per-query match subscription.
type Subscription interface {
	// Done is closed after the final OnMatch delivery: the engine closed
	// and drained, the remote stream ended, or Close was called.
	Done() <-chan struct{}
	// Err reports why delivery ended, once Done is closed: nil for a clean
	// end (engine drain or local Close), the transport error otherwise.
	Err() error
	// Close cancels the subscription. Idempotent; a delivery already in
	// flight may still arrive concurrently with Close.
	Close() error
}

// Engine is the StreamWorks system surface, implemented by all backends
// (New, NewSharded, Connect — and every future one). The contract:
//
//   - RegisterQuery installs a continuous query; matches of that query
//     begin flowing to matching subscriptions. Duplicate names return
//     ErrDuplicateQuery. RegisterQueryWith is the same with per-query
//     overrides of the engine's plan-strategy and adaptive-planning
//     defaults; RegisterQuery(ctx, q) ≡ RegisterQueryWith(ctx, q,
//     RegisterOptions{}).
//   - Process/ProcessBatch ingest timestamped edges, which must arrive in
//     non-decreasing timestamp order up to the engine's slack. ctx bounds
//     the blocking hand-off.
//   - Advance signals the passage of stream time in the absence of edges,
//     driving window expiry and pruning.
//   - Subscribe attaches a MatchSink for one query ("" for all).
//   - Metrics snapshots counters (still available after Close).
//   - Close shuts delivery down: idempotent, and every Subscription's Done
//     closes after its final delivery. Mutating calls after Close return
//     ErrClosed.
type Engine interface {
	RegisterQuery(ctx context.Context, q *Query) error
	RegisterQueryWith(ctx context.Context, q *Query, opts RegisterOptions) error
	UnregisterQuery(ctx context.Context, name string) error
	Process(ctx context.Context, se StreamEdge) error
	ProcessBatch(ctx context.Context, edges []StreamEdge) error
	Advance(ctx context.Context, ts Timestamp) error
	Subscribe(queryFilter string, sink MatchSink) (Subscription, error)
	Metrics(ctx context.Context) (Metrics, error)
	Close() error
}
