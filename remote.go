package streamworks

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/client"
)

// Remote is the HTTP backend: the same Engine surface served by a remote
// streamworksd daemon. Queries travel as the text DSL, edges as NDJSON or
// binary-frame batches (WithTransport), matches as a streaming subscription
// per Subscribe call.
type Remote struct {
	c    *client.Client
	info ServerInfo
	cfg  config // registration defaults (strategy, adaptive)

	mu     sync.Mutex
	subs   map[*remoteSub]struct{}
	closed bool
}

var _ Engine = (*Remote)(nil)

// Connect dials the daemon at baseURL (e.g. "http://127.0.0.1:8090"),
// verifies it is healthy, and returns the remote engine. The daemon's
// self-description is available via ServerInfo. Closing the Remote tears
// down its subscriptions but leaves the daemon running.
func Connect(ctx context.Context, baseURL string, opts ...Option) (*Remote, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var copts []client.Option
	if cfg.httpClient != nil {
		copts = append(copts, client.WithHTTPClient(cfg.httpClient))
	}
	if cfg.transport != "" {
		copts = append(copts, client.WithTransport(client.Transport(cfg.transport)))
	}
	c := client.New(baseURL, copts...)
	h, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("streamworks: connecting to %s: %w", baseURL, err)
	}
	return &Remote{c: c, info: *h, cfg: cfg, subs: make(map[*remoteSub]struct{})}, nil
}

// ServerInfo returns the daemon's health self-description captured at
// Connect time (API version, shard count, uptime).
func (r *Remote) ServerInfo() ServerInfo { return r.info }

// remoteErr maps wire-level failures onto the shared API sentinels so
// errors.Is behaves identically across backends.
func remoteErr(err error, sentinelByStatus map[int]error) error {
	var ae *client.APIError
	if errors.As(err, &ae) {
		if sent, ok := sentinelByStatus[ae.Status]; ok {
			return fmt.Errorf("%w (%v)", sent, err)
		}
	}
	return err
}

// RegisterQuery registers q with the daemon (serialized through the text
// DSL, so q must be named), applying this engine's WithPlanStrategy /
// WithAdaptivePlanning defaults.
func (r *Remote) RegisterQuery(ctx context.Context, q *Query) error {
	return r.RegisterQueryWith(ctx, q, RegisterOptions{})
}

// RegisterQueryWith registers q with explicit planning options. The options
// (merged with this engine's defaults) travel as URL parameters on POST
// /v1/queries; the daemon's engine performs the planning and, when adaptive
// is on, the runtime re-planning.
func (r *Remote) RegisterQueryWith(ctx context.Context, q *Query, opts RegisterOptions) error {
	if q == nil {
		return ErrNilQuery
	}
	if err := r.checkOpen(); err != nil {
		return err
	}
	wire := api.RegisterOptions{Strategy: opts.Strategy}
	if wire.Strategy == "" {
		wire.Strategy = r.cfg.strategy
	}
	switch opts.Adaptive {
	case AdaptiveOn:
		wire.Adaptive = "on"
	case AdaptiveOff:
		wire.Adaptive = "off"
	default:
		if r.cfg.adaptive {
			wire.Adaptive = "on"
		}
	}
	_, err := r.c.RegisterQueryWith(ctx, q, wire)
	return remoteErr(err, map[int]error{http.StatusConflict: ErrDuplicateQuery})
}

// UnregisterQuery removes a registered query by name.
func (r *Remote) UnregisterQuery(ctx context.Context, name string) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	err := r.c.UnregisterQuery(ctx, name)
	return remoteErr(err, map[int]error{http.StatusNotFound: ErrUnknownQuery})
}

// Process ships one edge to the daemon and waits until it has been routed
// to the shards.
func (r *Remote) Process(ctx context.Context, se StreamEdge) error {
	return r.ProcessBatch(ctx, []StreamEdge{se})
}

// ProcessBatch ships a batch of edges and waits until the batch has been
// routed to the shards. An overloaded daemon (HTTP 429) surfaces as an
// error the caller can test with client.IsOverloaded and retry.
func (r *Remote) ProcessBatch(ctx context.Context, edges []StreamEdge) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	res, err := r.c.IngestBatch(ctx, edges, true)
	if err != nil {
		return err
	}
	if res.Error != "" {
		return fmt.Errorf("streamworks: remote ingest: %s", res.Error)
	}
	return nil
}

// Advance broadcasts an explicit stream-time signal to every daemon shard.
func (r *Remote) Advance(ctx context.Context, ts Timestamp) error {
	if err := r.checkOpen(); err != nil {
		return err
	}
	return r.c.Advance(ctx, ts)
}

// Metrics fetches the daemon's aggregated engine counters. ServerMetrics
// returns the full per-shard and serving-layer detail.
func (r *Remote) Metrics(ctx context.Context) (Metrics, error) {
	m, err := r.ServerMetrics(ctx)
	if err != nil {
		return Metrics{}, err
	}
	return m.Engine, nil
}

// ServerMetrics fetches the full metrics payload: aggregated engine view,
// raw per-shard counters and serving-layer counters.
func (r *Remote) ServerMetrics(ctx context.Context) (*api.MetricsResponse, error) {
	return r.c.Metrics(ctx)
}

// remoteSub is one streaming match subscription.
type remoteSub struct {
	r      *Remote
	cancel context.CancelFunc
	stream *client.Subscription
	done   chan struct{}

	errMu sync.Mutex
	err   error
}

func (s *remoteSub) Done() <-chan struct{} { return s.done }

func (s *remoteSub) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *remoteSub) Close() error {
	s.r.mu.Lock()
	delete(s.r.subs, s)
	s.r.mu.Unlock()
	s.cancel()
	return s.stream.Close()
}

// Subscribe opens a streaming subscription for the query named by
// queryFilter ("" for all queries). The sink runs on a dedicated receive
// goroutine. Done closes when the server drains the stream, the subscriber
// is evicted for falling behind (resubscribe in that case), or Close is
// called; Err distinguishes transport failures from clean ends.
func (r *Remote) Subscribe(queryFilter string, sink MatchSink) (Subscription, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := r.c.SubscribeMatches(ctx, queryFilter)
	if err != nil {
		cancel()
		return nil, remoteErr(err, map[int]error{http.StatusNotFound: ErrUnknownQuery})
	}
	sub := &remoteSub{r: r, cancel: cancel, stream: stream, done: make(chan struct{})}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		cancel()
		stream.Close()
		return nil, ErrClosed
	}
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	go func() {
		defer close(sub.done)
		// The stream can end on its own (server drain, slow-consumer
		// eviction); drop the registry entry so long-lived Remotes that
		// resubscribe repeatedly do not accumulate dead subscriptions.
		defer func() {
			r.mu.Lock()
			delete(r.subs, sub)
			r.mu.Unlock()
		}()
		for {
			rep, err := stream.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && ctx.Err() == nil {
					sub.errMu.Lock()
					sub.err = err
					sub.errMu.Unlock()
				}
				return
			}
			sink.OnMatch(rep)
		}
	}()
	return sub, nil
}

func (r *Remote) checkOpen() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	return nil
}

// Close tears down every subscription (their Done closes once the receive
// goroutines finish) and marks the engine closed. The remote daemon keeps
// serving other clients. Idempotent.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	subs := make([]*remoteSub, 0, len(r.subs))
	for sub := range r.subs {
		subs = append(subs, sub)
	}
	r.subs = make(map[*remoteSub]struct{})
	r.mu.Unlock()
	for _, sub := range subs {
		sub.cancel()
		sub.stream.Close()
	}
	return nil
}
