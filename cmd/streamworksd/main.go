// Command streamworksd is the StreamWorks daemon: the continuous graph
// query engine, sharded across cores, served over HTTP. Register queries in
// the text DSL, stream NDJSON edges at it, and subscribe to matches:
//
//	streamworksd -addr :8090 -shards 4 -retention 10m
//	curl -X POST --data-binary @query.swq  localhost:8090/v1/queries
//	curl -X POST --data-binary @edges.ndjson localhost:8090/v1/edges
//	curl -N 'localhost:8090/v1/matches?query=smurf-ddos'
//
// SIGINT/SIGTERM drain gracefully: queued edge batches flush through the
// shards and every match subscriber's stream ends cleanly before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/api"
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/obs"
	"github.com/streamworks/streamworks/internal/replan"
	"github.com/streamworks/streamworks/internal/server"
	"github.com/streamworks/streamworks/internal/shard"
	"github.com/streamworks/streamworks/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		shards    = flag.Int("shards", 4, "number of engine shards")
		retention = flag.Duration("retention", 0, "sliding window width (0 = retain everything; query windows widen it)")
		slack     = flag.Duration("slack", 0, "tolerated out-of-order arrival lag")
		summaries = flag.Bool("summaries", true, "collect stream statistics for the selective planner")
		sharedPln = flag.Bool("shared-plans", false, "fold all registered queries into one shared evaluation DAG: common subpatterns are evaluated once per edge and fanned out (emissions unchanged)")
		triad     = flag.Int("triad-sampling", 10, "1-in-n triad sampling rate (0 disables)")
		mailbox   = flag.Int("mailbox", 1024, "per-shard mailbox depth (messages)")
		queue     = flag.Int("queue", 64, "ingest queue depth (batches); full queue answers 429")
		subBuffer = flag.Int("sub-buffer", 256, "per-subscriber match buffer; overflow evicts the subscriber")
		maxBatch  = flag.Int("max-batch", 65536, "maximum edges accepted per ingest request")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")

		dataDir       = flag.String("data-dir", "", "write-ahead log + snapshot directory; restart with the same dir to recover state (empty disables durability)")
		fsync         = flag.String("fsync", "interval", "WAL fsync policy: always (sync every frame), interval (group commit), off (page cache only)")
		fsyncInterval = flag.Duration("fsync-interval", 0, "group-commit interval for -fsync interval (0 = default 50ms)")
		snapshotEvery = flag.Int("snapshot-every", 0, "snapshot + compact the WAL every n ingested batches (0 = default 4096; negative disables)")
		requireDur    = flag.Bool("require-durability", false, "refuse ingest with 503 while durability is degraded instead of continuing in-memory (needs -data-dir)")
		ingestTimeout = flag.Duration("ingest-timeout", 0, "bound on how long a wait=1 ingest request blocks before answering 503 (0 = unbounded)")

		obsOn       = flag.Bool("obs", false, "enable observability: per-segment latency histograms, per-plan-node statistics, Prometheus exposition at GET /metrics")
		traceBuffer = flag.Int("trace-buffer", 4096, "edge-journey trace ring capacity in events (0 disables tracing; needs -obs)")
		traceSample = flag.Int("trace-sample", 64, "trace one edge in n, selected by edge ID (0 disables tracing)")
		traceRate   = flag.Int("trace-rate", 1000, "maximum trace events recorded per second")

		strategy     = flag.String("strategy", "", "default decomposition strategy for registrations (selective, lazy, eager, balanced; empty = selective)")
		adaptive     = flag.Bool("adaptive", false, "adapt query plans to live stream statistics by default (per-query override: POST /v1/queries?adaptive=on|off)")
		replanEvery  = flag.Int("replan-every", 0, "edges between adaptive re-planning drift checks (0 = default 2048)")
		replanThresh = flag.Float64("replan-threshold", 0, "cost-ratio hysteresis before a plan hot-swap (0 = default 2.0)")
		replanCool   = flag.Duration("replan-cooldown", 0, "minimum stream time between plan swaps of one query (0 = default 10s; negative disables)")
	)
	flag.Parse()

	if *strategy != "" {
		// Fail at boot, not as a 422 on every later registration.
		valid := false
		for _, s := range streamworks.PlanStrategies() {
			if s == *strategy {
				valid = true
				break
			}
		}
		if !valid {
			log.Fatalf("streamworksd: unknown -strategy %q (want one of %v)", *strategy, streamworks.PlanStrategies())
		}
	}

	if _, err := wal.ParseFsyncPolicy(*fsync); err != nil {
		// Fail at boot, not as silently-degraded durability at first append.
		log.Fatalf("streamworksd: %v", err)
	}
	if *requireDur && *dataDir == "" {
		log.Fatalf("streamworksd: -require-durability needs -data-dir")
	}

	obsCfg := obs.Config{Enabled: *obsOn}
	if *obsOn {
		obsCfg.Tracer = obs.NewTracer(*traceBuffer, *traceSample, *traceRate, obs.SystemClock)
	}

	srv := server.New(server.Config{
		Shard: shard.Config{
			Shards: *shards,
			Buffer: *mailbox,
			Engine: core.Config{
				Retention:       *retention,
				Slack:           *slack,
				EnableSummaries: *summaries,
				TriadSampling:   *triad,
				SharedPlans:     *sharedPln,
				Obs:             obsCfg,
				Replan: replan.Config{
					CheckEvery: *replanEvery,
					Threshold:  *replanThresh,
					Cooldown:   *replanCool,
				},
			},
		},
		QueueDepth:        *queue,
		SubscriberBuffer:  *subBuffer,
		MaxBatchEdges:     *maxBatch,
		DefaultStrategy:   *strategy,
		AdaptivePlanning:  *adaptive,
		DataDir:           *dataDir,
		FsyncPolicy:       *fsync,
		FsyncInterval:     *fsyncInterval,
		SnapshotEvery:     *snapshotEvery,
		RequireDurability: *requireDur,
		IngestTimeout:     *ingestTimeout,
	})

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: profiling and the
		// observability surface stay off the public API (the API mux also
		// serves /metrics and /debug/trace, but operators typically bind
		// this one to loopback and scrape here).
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pm.Handle("/metrics", srv.PromHandler())
		pm.Handle("/debug/trace", srv.TraceHandler())
		go func() {
			log.Printf("streamworksd: pprof/metrics listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("streamworksd: pprof serve: %v", err)
			}
		}()
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("streamworksd: listening on %s (api=%s shards=%d retention=%s slack=%s adaptive=%v data-dir=%q fsync=%s)",
			*addr, api.Version, *shards, *retention, *slack, *adaptive, *dataDir, *fsync)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("streamworksd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("streamworksd: draining (flushing shards, closing subscribers)")
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("streamworksd: shutdown: %v", err)
	}
	log.Printf("streamworksd: bye")
}
