package main

import (
	"bytes"
	"context"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
)

// TestExactlyOnceAcrossSIGKILL is the process-level crash-recovery
// acceptance test: a real streamworksd is SIGKILLed mid-stream and
// restarted over the same data dir, and the set of match signatures
// delivered across both incarnations must equal what an uninterrupted
// in-process run detects. The in-process crash tests (durable_test.go)
// cover the same property with fault injection; this one proves it with an
// actual kill -9 — no deferred functions, no flushes, page cache only.
func TestExactlyOnceAcrossSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "streamworksd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building streamworksd: %v\n%s", err, out)
	}

	w := gen.NetFlowWorkload(gen.NetFlowConfig{
		Hosts:       250,
		Servers:     25,
		Edges:       3000,
		Start:       graph.TimestampFromTime(time.Date(2013, 6, 22, 0, 0, 0, 0, time.UTC)),
		MeanGap:     time.Millisecond,
		ContactSkew: 1.4,
		Seed:        42,
	}, time.Minute)
	ref, _, err := gen.RunSingle(w)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no matches")
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	var daemonLog bytes.Buffer
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-shards", "3",
			"-data-dir", dataDir,
			"-fsync", "interval",
		)
		cmd.Stdout = &daemonLog
		cmd.Stderr = &daemonLog
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting daemon: %v", err)
		}
		return cmd
	}
	daemon := start()
	defer func() {
		if daemon.Process != nil {
			daemon.Process.Kill()
			daemon.Wait()
		}
		if t.Failed() {
			t.Logf("daemon log:\n%s", daemonLog.String())
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cli := client.New("http://"+addr, client.WithRetry(client.RetryPolicy{
		MaxAttempts: -1, // until ctx cancellation
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
	}))
	waitHealthy(t, ctx, cli)
	for _, q := range w.Queries {
		if _, err := cli.RegisterQuery(ctx, q); err != nil {
			t.Fatalf("RegisterQuery(%s): %v", q.Name(), err)
		}
	}

	// The collector mirrors loadgen -resubscribe: one long-lived goroutine
	// that reattaches the match stream whenever it breaks, flagging
	// attachment so the ingest side can hold off while nobody is listening
	// (matches delivered while no subscriber is attached reach no one, and
	// without a further restart nothing would redeliver them).
	var (
		mu       sync.Mutex
		set      = make(gen.MatchSet)
		attached atomic.Bool
		closing  atomic.Bool
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !closing.Load() {
			sub, err := cli.SubscribeMatches(context.Background(), "")
			if err != nil {
				time.Sleep(25 * time.Millisecond)
				continue
			}
			attached.Store(true)
			for {
				rep, err := sub.Next()
				if err != nil {
					break
				}
				mu.Lock()
				set.AddKey(rep.Query, rep.Signature)
				mu.Unlock()
			}
			attached.Store(false)
			sub.Close()
		}
	}()
	waitAttached(t, ctx, &attached)

	const batch = 64
	kill := (len(w.Edges) / 2 / batch) * batch
	for i := 0; i < len(w.Edges); i += batch {
		j := min(i+batch, len(w.Edges))
		if i == kill {
			// SIGKILL: no drain, no final checkpoint, no snapshot.
			if err := daemon.Process.Kill(); err != nil {
				t.Fatalf("kill -9: %v", err)
			}
			daemon.Wait()
			daemon = start()
			waitHealthy(t, ctx, cli)
			// Recovery must come back durable, with the workload's queries
			// re-registered from the log.
			h, err := cli.Health(ctx)
			if err != nil {
				t.Fatalf("health after restart: %v", err)
			}
			if h.Durability != "ok" {
				t.Fatalf("durability after restart: %q, want ok", h.Durability)
			}
			qs, err := cli.Queries(ctx)
			if err != nil {
				t.Fatalf("listing queries after restart: %v", err)
			}
			if len(qs) != len(w.Queries) {
				t.Fatalf("recovered %d queries, want %d", len(qs), len(w.Queries))
			}
			// Do not resume ingest until the subscriber is reattached: the
			// recovery backlog goes to the first subscriber, and matches
			// from new edges must have someone to reach.
			waitAttached(t, ctx, &attached)
		}
		if _, err := cli.IngestBatch(ctx, w.Edges[i:j], true); err != nil {
			t.Fatalf("IngestBatch at %d: %v", i, err)
		}
	}

	// Graceful drain: SIGTERM flushes every queued batch and ends the match
	// streams cleanly after their final deliveries.
	daemon.Process.Signal(syscall.SIGTERM)
	daemon.Wait()
	waitSettled(t, &mu, set)
	closing.Store(true)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if !set.Equal(ref) {
		t.Fatalf("delivered across SIGKILL: %d match signatures, reference %d", len(set), len(ref))
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, ctx context.Context, cli *client.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := cli.Health(hctx)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func waitAttached(t *testing.T, ctx context.Context, attached *atomic.Bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if attached.Load() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("match subscriber never attached")
}

// waitSettled waits until the delivered set stops growing: the daemon
// process has exited, but the collector may still be draining buffered
// response bytes.
func waitSettled(t *testing.T, mu *sync.Mutex, set gen.MatchSet) {
	t.Helper()
	stable := 0
	last := -1
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(set)
		mu.Unlock()
		if n == last {
			stable++
			if stable >= 5 {
				return
			}
		} else {
			stable = 0
			last = n
		}
		time.Sleep(100 * time.Millisecond)
	}
}
