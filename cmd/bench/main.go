// Command bench is the repo's core-engine benchmark harness: it replays the
// canonical netflow and news workloads through the public streamworks API —
// streamworks.New for the single engine, streamworks.NewSharded for the
// sharded front-end — under testing.Benchmark with allocation accounting,
// and writes the results as JSON, so the numbers tracked across PRs measure
// exactly the surface users program against (push subscriptions included).
// BENCH_core.json at the repo root is produced by this command; CI runs a
// short configuration of it informationally on every push, and
// internal/gen's TestPublicAPISingleEngineMatchesGolden pins the measured
// path's match sets to the pre-redesign goldens.
//
//	bench -workload netflow -edges 25000 -out BENCH_core.json
//	bench -workload all -shards 0,4 -benchtime 2s
//	bench -workload drift               # frozen vs adaptive re-planning, post-drift edges/s
//	bench -workload many-queries -queries 200 -out BENCH_mqo.json   # shared-plan MQO win
//	bench -baseline old.json -out BENCH_core.json   # embed a prior run + deltas
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/streamworks/streamworks/internal/gen"
)

type report struct {
	GeneratedAt  string                  `json:"generated_at"`
	GoVersion    string                  `json:"go_version"`
	GOOS         string                  `json:"goos"`
	GOARCH       string                  `json:"goarch"`
	NumCPU       int                     `json:"num_cpu"`
	GOMAXPROCS   int                     `json:"gomaxprocs"`
	Note         string                  `json:"note,omitempty"`
	Results      []gen.BenchResult       `json:"results"`
	DriftResults []gen.DriftBenchResult  `json:"drift_results,omitempty"`
	MQOResults   []gen.MQOBenchResult    `json:"mqo_results,omitempty"`
	ObsOverhead  []gen.ObsOverheadResult `json:"obs_overhead,omitempty"`
	WALOverhead  []gen.WALOverheadResult `json:"wal_overhead,omitempty"`
	Baseline     *report                 `json:"baseline,omitempty"`
	Comparison   []comparison            `json:"comparison,omitempty"`
}

// comparison pairs one current result with the baseline result of the same
// (workload, engine) and reports the two acceptance numbers tracked across
// PRs: the allocation reduction and the throughput gain.
type comparison struct {
	Workload            string  `json:"workload"`
	Engine              string  `json:"engine"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	AllocsReductionPct  float64 `json:"allocs_reduction_pct"`
	BaselineEdgesPerSec float64 `json:"baseline_edges_per_sec"`
	EdgesPerSec         float64 `json:"edges_per_sec"`
	EdgesPerSecGainPct  float64 `json:"edges_per_sec_gain_pct"`
}

func main() {
	var (
		workload  = flag.String("workload", "all", "workload to replay: netflow, news, drift, obs-overhead, wal-overhead, many-queries or all (many-queries is its own lane, not part of all)")
		edges     = flag.Int("edges", 25_000, "approximate edges per workload replay")
		hosts     = flag.Int("hosts", 1000, "netflow host count")
		window    = flag.Duration("window", 30*time.Second, "query time window (netflow; news uses 10x)")
		shards    = flag.String("shards", "0", "comma-separated shard counts to benchmark (0 = single engine)")
		benchtime = flag.String("benchtime", "", "testing benchtime, e.g. 2s or 5x (default 1s)")
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline  = flag.String("baseline", "", "embed a prior report as the baseline and compute deltas")
		note      = flag.String("note", "", "free-form note recorded in the report")
		driftRuns = flag.Int("drift-runs", 3, "replays per drift configuration (best post-drift throughput is reported)")

		queries = flag.Int("queries", 200, "standing query variants for -workload many-queries")
		procs   = flag.String("procs", "1", "comma-separated GOMAXPROCS lanes for -workload many-queries (values above NumCPU measure scheduler pressure, not parallel speedup)")
		mqoRuns = flag.Int("mqo-runs", 2, "replays per many-queries configuration (best throughput is reported)")
	)
	testing.Init() // registers test.* flags so -benchtime can be forwarded
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			log.Fatalf("bench: -benchtime %q: %v", *benchtime, err)
		}
	}

	var workloads []gen.Workload
	runDrift, runObs, runWAL, runMQO := false, false, false, false
	switch *workload {
	case "many-queries":
		runMQO = true
	case "netflow":
		workloads = []gen.Workload{gen.BenchNetFlowWorkload(*edges, *hosts, *window)}
	case "news":
		workloads = []gen.Workload{gen.BenchNewsWorkload(*edges, 10**window)}
	case "drift":
		runDrift = true
	case "obs-overhead":
		runObs = true
	case "wal-overhead":
		runWAL = true
	case "all":
		workloads = []gen.Workload{
			gen.BenchNetFlowWorkload(*edges, *hosts, *window),
			gen.BenchNewsWorkload(*edges, 10**window),
		}
		runDrift = true
		runObs = true
		runWAL = true
	default:
		log.Fatalf("bench: unknown workload %q (want netflow, news, drift, obs-overhead, wal-overhead, many-queries or all)", *workload)
	}
	shardCounts, err := parseShards(*shards)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}
	for _, w := range workloads {
		for _, sc := range shardCounts {
			res, err := gen.BenchWorkload(w, sc)
			if err != nil {
				log.Fatalf("bench: %s: %v", w.Name, err)
			}
			fmt.Fprintf(os.Stderr, "%-8s %-10s %8d edges/op  %10.0f edges/s  %9d allocs/op  %11d B/op  %d matches\n",
				res.Workload, res.Engine, res.EdgesPerOp, res.EdgesPerSec, res.AllocsPerOp, res.BytesPerOp, res.Matches)
			rep.Results = append(rep.Results, res)
		}
	}
	if runDrift {
		// The drift benchmark is its own harness: the same workload replayed
		// with the plan frozen at registration and with adaptive re-planning
		// on, timing the post-drift segment separately. The two runs must
		// detect the identical match set — the hot swap is a pure
		// performance lever.
		dw := gen.BenchDriftWorkload(*edges, *hosts, *window)
		for _, sc := range shardCounts {
			frozen, fset, err := gen.BenchDrift(dw, sc, false, *driftRuns)
			if err != nil {
				log.Fatalf("bench: drift frozen: %v", err)
			}
			adaptive, aset, err := gen.BenchDrift(dw, sc, true, *driftRuns)
			if err != nil {
				log.Fatalf("bench: drift adaptive: %v", err)
			}
			if !fset.Equal(aset) {
				log.Fatalf("bench: drift match sets diverge: frozen %d vs adaptive %d", len(fset), len(aset))
			}
			for _, res := range []gen.DriftBenchResult{frozen, adaptive} {
				fmt.Fprintf(os.Stderr, "%-8s %-10s %-9s %8d edges  %10.0f post-drift edges/s  %10.0f total edges/s  %2d replans  %d matches\n",
					res.Workload, res.Engine, res.Mode, res.Edges, res.PostDriftEdgesPerSec, res.TotalEdgesPerSec, res.Replans, res.Matches)
			}
			rep.DriftResults = append(rep.DriftResults, frozen, adaptive)
		}
	}
	if runObs {
		// The observability overhead lane replays one workload three times —
		// instrumentation off, histograms on, histograms plus the sampled
		// trace ring — and reports the edges/s regression of each mode
		// against the first. The acceptance budget is ≤3% for "enabled".
		ow := gen.BenchNetFlowWorkload(*edges, *hosts, *window)
		for _, sc := range shardCounts {
			results, err := gen.BenchObsOverhead(ow, sc)
			if err != nil {
				log.Fatalf("bench: obs overhead: %v", err)
			}
			for _, res := range results {
				fmt.Fprintf(os.Stderr, "%-8s %-10s obs=%-8s %10.0f edges/s  %+5.1f%% overhead  %d matches\n",
					res.Workload, res.Engine, res.Mode, res.EdgesPerSec, res.OverheadPct, res.Matches)
			}
			rep.ObsOverhead = append(rep.ObsOverhead, results...)
		}
	}
	if runWAL {
		// The WAL overhead lane replays one workload three ways — no data
		// dir, group-commit fsync ("interval", the streamworksd default) and
		// fsync-per-batch ("always") — and reports the edges/s regression of
		// each durable mode against the first. The acceptance budget is ≤10%
		// for "interval".
		ww := gen.BenchNetFlowWorkload(*edges, *hosts, *window)
		for _, sc := range shardCounts {
			results, err := gen.BenchWALOverhead(ww, sc)
			if err != nil {
				log.Fatalf("bench: wal overhead: %v", err)
			}
			for _, res := range results {
				fmt.Fprintf(os.Stderr, "%-8s %-10s wal=%-9s %10.0f edges/s  %+5.1f%% overhead  %6d frames  %5d fsyncs  %d matches\n",
					res.Workload, res.Engine, res.Mode, res.EdgesPerSec, res.OverheadPct, res.Frames, res.Fsyncs, res.Matches)
			}
			rep.WALOverhead = append(rep.WALOverhead, results...)
		}
	}
	if runMQO {
		// The multi-query-optimization lane: one workload standing under
		// hundreds of generated query variants, replayed per-query and with
		// the shared evaluation DAG, per GOMAXPROCS lane. The two modes must
		// detect the identical match set — sharing is a pure performance
		// lever; a divergence is a correctness bug and fails the run.
		procCounts, err := parseShards(*procs)
		if err != nil {
			log.Fatalf("bench: -procs: %v", err)
		}
		mw := gen.BenchManyQueriesWorkload(*queries, *edges, *hosts, *window)
		for _, p := range procCounts {
			if p < 1 {
				log.Fatalf("bench: -procs values must be >= 1")
			}
			prev := runtime.GOMAXPROCS(p)
			for _, sc := range shardCounts {
				perQuery, pset, err := gen.BenchManyQueries(mw, sc, false, *mqoRuns)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					log.Fatalf("bench: many-queries per-query: %v", err)
				}
				shared, sset, err := gen.BenchManyQueries(mw, sc, true, *mqoRuns)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					log.Fatalf("bench: many-queries shared: %v", err)
				}
				if !pset.Equal(sset) {
					runtime.GOMAXPROCS(prev)
					log.Fatalf("bench: many-queries match sets diverge: per-query %d vs shared %d", len(pset), len(sset))
				}
				for _, res := range []gen.MQOBenchResult{perQuery, shared} {
					fmt.Fprintf(os.Stderr, "%-12s %-10s %-9s procs=%d %4d queries %8d edges  %10.0f edges/s  %12d searches  %4d dag-nodes (%d shared, %d hits)  %d matches\n",
						res.Workload, res.Engine, res.Mode, res.GOMAXPROCS, res.Queries, res.Edges,
						res.EdgesPerSec, res.LocalSearches, res.DAGNodes, res.DAGSharedNodes, res.SharedHits, res.Matches)
				}
				rep.MQOResults = append(rep.MQOResults, perQuery, shared)
			}
			runtime.GOMAXPROCS(prev)
		}
	}
	if *baseline != "" {
		prior, err := loadReport(*baseline)
		if err != nil {
			log.Fatalf("bench: loading baseline: %v", err)
		}
		// Keep the embedded baseline flat: deltas are always against the
		// directly preceding run, not a chain of runs.
		prior.Baseline, prior.Comparison = nil, nil
		rep.Baseline = prior
		rep.Comparison = compare(prior.Results, rep.Results)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("bench: encoding report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("bench: writing %s: %v", *out, err)
	}
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts in %q", s)
	}
	return out, nil
}

func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func compare(base, cur []gen.BenchResult) []comparison {
	var out []comparison
	for _, c := range cur {
		for _, b := range base {
			if b.Workload != c.Workload || b.Engine != c.Engine {
				continue
			}
			cmp := comparison{
				Workload:            c.Workload,
				Engine:              c.Engine,
				BaselineAllocsPerOp: b.AllocsPerOp,
				AllocsPerOp:         c.AllocsPerOp,
				BaselineEdgesPerSec: b.EdgesPerSec,
				EdgesPerSec:         c.EdgesPerSec,
			}
			if b.AllocsPerOp > 0 {
				cmp.AllocsReductionPct = 100 * (1 - float64(c.AllocsPerOp)/float64(b.AllocsPerOp))
			}
			if b.EdgesPerSec > 0 {
				cmp.EdgesPerSecGainPct = 100 * (float64(c.EdgesPerSec)/b.EdgesPerSec - 1)
			}
			out = append(out, cmp)
			break
		}
	}
	return out
}
