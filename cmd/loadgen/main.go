// Command loadgen replays a generated StreamWorks workload (netflow, news,
// drift or many-queries) against a live streamworksd over HTTP and reports
// throughput and
// end-to-end match latency. It drives the server exactly like a production
// feeder: the public streamworks.Connect backend for health, query
// registration, the push match subscription and metrics, plus the raw typed
// client for asynchronous edge batches with 429 backoff (the public
// Engine's ProcessBatch waits for routing, which a load generator must not).
// The -transport flag selects the ingest encoding: NDJSON batches, binary
// frame batches, or the persistent binary /v1/stream session.
//
//	loadgen -addr http://127.0.0.1:8090 -workload netflow -edges 100000
//	loadgen -workload many-queries -queries 300   # 300 generated variants (pair with streamworksd -shared-plans)
//	loadgen -transport stream              # persistent binary ingest session
//	loadgen -json -out BENCH_server.json   # machine-readable results
//	loadgen -json -merge -transport binary # fold this run into runs[transport] of -out
//	loadgen -dump edges.ndjson             # write the stream for curl replay
//
// Match latency is measured per match as the wall-clock gap between the
// moment the last edge of the match was handed to the server and the moment
// the match report arrived on the subscription — the full detect-and-deliver
// path through queue, shards, dedup and fan-out. Latency percentiles are
// computed over a bounded reservoir sample (the mean and max stay exact over
// every match), so arbitrarily long runs hold a fixed memory footprint.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamworks/streamworks"
	"github.com/streamworks/streamworks/internal/client"
	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/gen"
	"github.com/streamworks/streamworks/internal/graph"
	"github.com/streamworks/streamworks/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8090", "server base URL")
		workload = flag.String("workload", "netflow", "workload to replay: netflow, news, drift or many-queries")
		queries  = flag.Int("queries", 0, "register this many generated query variants instead of the workload's own suite (0 keeps the suite; many-queries defaults to 200)")
		adaptive = flag.Bool("adaptive", false, "register queries with adaptive re-planning (daemon plans hot-swap on selectivity drift)")
		edges    = flag.Int("edges", 100_000, "background edges (netflow)")
		hosts    = flag.Int("hosts", 2000, "hosts (netflow)")
		articles = flag.Int("articles", 2000, "articles (news)")
		window   = flag.Duration("window", time.Minute, "query window")
		batch    = flag.Int("batch", 1024, "edges per ingest request")
		seed     = flag.Int64("seed", 1, "workload seed")
		jsonOut  = flag.Bool("json", false, "write machine-readable results")
		outPath  = flag.String("out", "BENCH_server.json", "path for -json results")
		mergeOut = flag.Bool("merge", false, "with -json, merge this run into -out under runs[transport] instead of overwriting the file with a single result")
		dumpPath = flag.String("dump", "", "write the workload as NDJSON to this file and exit")

		transport = flag.String("transport", "ndjson", "ingest transport: ndjson, binary (framed batches) or stream (persistent binary session)")
		reservoir = flag.Int("reservoir", 65536, "latency reservoir size: percentiles are exact over up to this many uniformly sampled matches")

		waitIngest  = flag.Bool("wait", false, "ingest with wait=1: each batch is routed (and WAL'd on a durable daemon) before the next is sent — required for exact crash-recovery comparisons")
		sigsPath    = flag.String("sigs", "", "write the delivered match-signature set (query<TAB>signature, sorted, deduplicated) to this file on exit")
		resubscribe = flag.Bool("resubscribe", false, "reconnect the match stream when it ends early (daemon restart, slow-consumer eviction) instead of flagging the run truncated")
	)
	flag.Parse()

	w := buildWorkload(*workload, *edges, *hosts, *articles, *window, *seed)
	if *queries > 0 {
		// Variant registration load: N generated near-duplicate standing
		// queries (cycled netflow/news patterns with window and predicate
		// jitter) in place of the workload's own suite — the deployment shape
		// a daemon running with -shared-plans folds into one evaluation DAG.
		w.Queries = gen.QueryVariants(*queries, *window)
	}
	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if err := w.NDJSON(f); err != nil {
			log.Fatalf("loadgen: encoding workload: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		log.Printf("loadgen: wrote %d edges to %s", len(w.Edges), *dumpPath)
		return
	}

	ctr := client.TransportNDJSON
	switch *transport {
	case "ndjson":
	case "binary", "stream":
		ctr = client.TransportBinary
	default:
		log.Fatalf("loadgen: unknown transport %q (want ndjson, binary or stream)", *transport)
	}

	// Transient ingest failures — 429 shed, 503 while draining or degraded,
	// connection errors across a daemon restart — retry inside the client
	// with capped exponential backoff; a minute of sustained failure is
	// fatal.
	c := client.New(*addr, client.WithTransport(ctr), client.WithRetry(client.RetryPolicy{
		MaxAttempts: 120,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    time.Second,
	}))
	ctx := context.Background()
	rem := connect(ctx, *addr, 10*time.Second)
	log.Printf("loadgen: connected (api %s, %d shards)", rem.ServerInfo().Version, rem.ServerInfo().Shards)

	regOpts := streamworks.RegisterOptions{}
	if *adaptive {
		regOpts.Adaptive = streamworks.AdaptiveOn
	}
	for _, q := range w.Queries {
		if err := rem.RegisterQueryWith(ctx, q, regOpts); err != nil {
			log.Fatalf("loadgen: registering %q: %v", q.Name(), err)
		}
	}

	// Track when each edge was handed to the server so the match sink can
	// compute per-match detect-and-deliver latency.
	var (
		sendMu    sync.Mutex
		sendTimes = make(map[uint64]time.Time, len(w.Edges))
	)
	var (
		latMu   sync.Mutex
		lats    = newReservoir(*reservoir, *seed)
		matches int
	)
	// sigs deduplicates delivered matches by identity — redeliveries after a
	// daemon restart collapse, which is what makes crash and uninterrupted
	// runs directly comparable as sets.
	sigs := make(map[string]struct{})
	// truncated is set when the subscription ends before we close it
	// ourselves — the server evicted us for falling behind, so match counts
	// and latency percentiles below are truncated and must be flagged, not
	// reported as complete. With -resubscribe the stream is reattached
	// instead.
	var truncated, closing, attached atomic.Bool
	sink := streamworks.SinkFunc(func(rep streamworks.Match) {
		now := time.Now()
		var last time.Time
		sendMu.Lock()
		for _, id := range rep.EdgeIDs {
			if t, ok := sendTimes[id]; ok && t.After(last) {
				last = t
			}
		}
		sendMu.Unlock()
		latMu.Lock()
		matches++
		if !last.IsZero() {
			lats.add(float64(now.Sub(last)) / float64(time.Millisecond))
		}
		if *sigsPath != "" {
			sigs[rep.Query+"\t"+rep.Signature] = struct{}{}
		}
		latMu.Unlock()
	})
	var (
		subMu  sync.Mutex
		curSub streamworks.Subscription
	)
	var attach func() error
	watch := func(s streamworks.Subscription) {
		<-s.Done()
		attached.Store(false)
		if closing.Load() {
			return
		}
		if !*resubscribe {
			truncated.Store(true)
			log.Printf("loadgen: match stream ended early (evicted as a slow consumer?): err=%v", s.Err())
			return
		}
		for !closing.Load() {
			if err := attach(); err == nil {
				log.Printf("loadgen: match stream ended, resubscribed")
				return
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	attach = func() error {
		s, err := rem.Subscribe("", sink)
		if err != nil {
			return err
		}
		subMu.Lock()
		curSub = s
		subMu.Unlock()
		attached.Store(true)
		go watch(s)
		return nil
	}
	if err := attach(); err != nil {
		log.Fatalf("loadgen: subscribing: %v", err)
	}

	// ingest hands one chunk to the daemon. Under -resubscribe retries are
	// driven here rather than inside the retrying client so that every
	// (re)send first waits for the match stream to be attached: a batch
	// accepted by a freshly restarted daemon before the subscriber reattaches
	// would have its matches delivered to no one, and nothing short of
	// another restart would redeliver them — a silent hole in the signature
	// set that crash-recovery comparisons diff against.
	rawc := client.New(*addr, client.WithTransport(ctr)) // no internal retry; the loop below owns it
	var localRetries uint64
	// The persistent binary session: one long-lived POST /v1/stream whose
	// backpressure is the TCP window, so no 429/retry machinery applies —
	// Send simply blocks while the daemon's queue is full.
	var es *client.EdgeStream
	if *transport == "stream" {
		var err error
		es, err = c.OpenEdgeStream(ctx)
		if err != nil {
			log.Fatalf("loadgen: opening edge stream: %v", err)
		}
	}
	ingest := func(chunk []graph.StreamEdge, wait bool) error {
		if es != nil {
			if len(chunk) == 0 {
				return nil // the final flush is EdgeStream.Close below
			}
			if *resubscribe {
				deadline := time.Now().Add(2 * time.Minute)
				for !attached.Load() {
					if time.Now().After(deadline) {
						return fmt.Errorf("match stream detached for too long")
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			return es.Send(chunk)
		}
		if !*resubscribe {
			_, err := c.IngestBatch(ctx, chunk, wait)
			return err
		}
		delay := 5 * time.Millisecond
		deadline := time.Now().Add(2 * time.Minute)
		for {
			for !attached.Load() {
				if time.Now().After(deadline) {
					return fmt.Errorf("match stream detached for too long")
				}
				time.Sleep(10 * time.Millisecond)
			}
			_, err := rawc.IngestBatch(ctx, chunk, wait)
			if err == nil || !client.IsRetryable(err) || time.Now().After(deadline) {
				return err
			}
			localRetries++
			time.Sleep(delay)
			if delay < time.Second {
				delay *= 2
			}
		}
	}

	start := time.Now()
	for i := 0; i < len(w.Edges); i += *batch {
		j := min(i+*batch, len(w.Edges))
		chunk := w.Edges[i:j]
		// Stamp before the hand-off (no match can beat its stamp); a batch
		// the client had to shed-and-retry keeps its original stamp, so its
		// latency includes the backoff — visible, not hidden.
		now := time.Now()
		sendMu.Lock()
		for _, se := range chunk {
			sendTimes[uint64(se.Edge.ID)] = now
		}
		sendMu.Unlock()
		if err := ingest(chunk, *waitIngest); err != nil {
			log.Fatalf("loadgen: ingest: %v", err)
		}
	}
	// Flush: an empty wait batch (or, for the persistent session, closing it)
	// returns only after everything queued ahead has been routed to the
	// shards.
	if es != nil {
		res, err := es.Close()
		if err != nil {
			log.Fatalf("loadgen: closing edge stream: %v", err)
		}
		if res.Accepted != len(w.Edges) {
			log.Fatalf("loadgen: stream session accepted %d of %d edges", res.Accepted, len(w.Edges))
		}
	} else if err := ingest(nil, true); err != nil {
		log.Fatalf("loadgen: flush: %v", err)
	}
	ingestDur := time.Since(start)
	rejected := c.Retries() + localRetries

	metrics := settle(ctx, rem)
	closing.Store(true)
	subMu.Lock()
	sub := curSub
	subMu.Unlock()
	sub.Close()
	<-sub.Done()

	latMu.Lock()
	defer latMu.Unlock()
	eps := float64(len(w.Edges)) / ingestDur.Seconds()
	res := benchResult{
		Workload:     w.Name,
		Transport:    *transport,
		Edges:        len(w.Edges),
		Batch:        *batch,
		Shards:       len(metrics.Shards),
		IngestSecs:   ingestDur.Seconds(),
		EdgesPerSec:  eps,
		Matches:      matches,
		Truncated:    truncated.Load(),
		Rejected429:  rejected,
		LatencyMS:    lats.summary(),
		ServerSide:   metrics.Server,
		EngineTotals: engineCounters(metrics.Engine),
	}
	for i, sm := range metrics.Shards {
		res.PerShard = append(res.PerShard, shardCounters{Shard: i,
			EdgesProcessed: sm.EdgesProcessed,
			MatchesEmitted: sm.MatchesEmitted,
			LocalSearches:  sm.LocalSearches,
			LiveEdges:      sm.LiveEdges,
		})
	}

	fmt.Printf("workload=%s transport=%s edges=%d batch=%d shards=%d\n", res.Workload, res.Transport, res.Edges, res.Batch, res.Shards)
	fmt.Printf("ingest: %.2fs (%.0f edges/sec, %d attempts retried)\n", res.IngestSecs, res.EdgesPerSec, rejected)
	note := ""
	if res.Truncated {
		note = " [TRUNCATED: subscriber evicted mid-run]"
	}
	fmt.Printf("matches: %d delivered%s (latency ms p50=%.1f p90=%.1f p99=%.1f max=%.1f)\n",
		res.Matches, note, res.LatencyMS.P50, res.LatencyMS.P90, res.LatencyMS.P99, res.LatencyMS.Max)
	for _, sc := range res.PerShard {
		fmt.Printf("  shard %d: edges=%d matches(pre-dedup)=%d searches=%d live=%d\n",
			sc.Shard, sc.EdgesProcessed, sc.MatchesEmitted, sc.LocalSearches, sc.LiveEdges)
	}

	if metrics.Obs != nil {
		res.Segments, res.SegmentCoverage = segmentBreakdown(metrics.Obs, res.LatencyMS.Mean)
		fmt.Printf("latency breakdown (daemon obs, per-segment means):\n")
		for _, seg := range res.Segments {
			fmt.Printf("  %-18s n=%-9d mean=%9.1fµs p99=%9.1fµs\n",
				seg.Segment, seg.Count, seg.MeanNS/1e3, seg.P99NS/1e3)
		}
		if lag, ok := metrics.Obs.Find(obs.DetectLagHistogramName, ""); ok {
			fmt.Printf("  %-18s n=%-9d mean=%9.1fµs (stream time, not wall)\n",
				"detect_stream_lag", lag.Count, lag.Mean/1e3)
		}
		if jh, ok := metrics.Obs.Find(obs.JourneyHistogramName, ""); ok && jh.Count > 0 {
			fmt.Printf("  %-18s n=%-9d mean=%9.1fµs p99=%9.1fµs (arrival→flush, per match)\n",
				"wall_journey", jh.Count, jh.Mean/1e3, jh.P99/1e3)
			res.JourneyMeanMS = jh.Mean / 1e6
			if res.LatencyMS.Samples > 0 && res.LatencyMS.Mean > 0 {
				res.JourneyCoverage = 100 * res.JourneyMeanMS / res.LatencyMS.Mean
			}
		}
		if res.LatencyMS.Samples > 0 {
			if res.JourneyCoverage > 0 {
				// Both sides of this comparison are match-weighted, so it is
				// the honest closure check; the per-edge segment sum below it
				// undercounts whenever queue depth ramps during the run
				// (matched edges wait longer than the average edge).
				fmt.Printf("segment accounting: daemon journey (arrival→flush) mean %.2fms accounts for %.0f%% of measured detect-and-deliver mean (%.2fms)\n",
					res.JourneyMeanMS, res.JourneyCoverage, res.LatencyMS.Mean)
				fmt.Printf("  (per-edge segment means sum to %.0f%% of the measured mean; the gap is edge-vs-match weighting under queue ramp)\n",
					res.SegmentCoverage)
			} else {
				fmt.Printf("segment accounting: per-edge segment means sum to %.0f%% of measured detect-and-deliver mean (%.2fms)\n",
					res.SegmentCoverage, res.LatencyMS.Mean)
			}
		}
	}

	if *sigsPath != "" {
		lines := make([]string, 0, len(sigs))
		for k := range sigs {
			lines = append(lines, k)
		}
		sort.Strings(lines)
		var sb strings.Builder
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*sigsPath, []byte(sb.String()), 0o644); err != nil {
			log.Fatalf("loadgen: writing %s: %v", *sigsPath, err)
		}
		log.Printf("loadgen: wrote %d distinct match signatures to %s", len(lines), *sigsPath)
	}

	if *jsonOut {
		if err := writeResult(*outPath, *mergeOut, res); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		log.Printf("loadgen: wrote %s", *outPath)
	}
}

// writeResult writes res to path: as the whole file, or — with merge — as
// the runs[transport] entry of a per-transport comparison document, keeping
// the other transports' entries from an existing file intact.
func writeResult(path string, merge bool, res benchResult) error {
	var out any = res
	if merge {
		doc := struct {
			Runs map[string]json.RawMessage `json:"runs"`
		}{Runs: map[string]json.RawMessage{}}
		if prev, err := os.ReadFile(path); err == nil {
			// Best-effort: a missing, single-run or corrupt file just starts
			// a fresh comparison document.
			_ = json.Unmarshal(prev, &doc)
			if doc.Runs == nil {
				doc.Runs = map[string]json.RawMessage{}
			}
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return err
		}
		doc.Runs[res.Transport] = raw
		out = doc
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func buildWorkload(name string, edges, hosts, articles int, window time.Duration, seed int64) gen.Workload {
	switch name {
	case "netflow":
		cfg := gen.DefaultNetFlowConfig()
		cfg.Edges = edges
		cfg.Hosts = hosts
		cfg.Servers = max(hosts/20, 1)
		cfg.Seed = seed
		return gen.NetFlowWorkload(cfg, window)
	case "news":
		cfg := gen.DefaultNewsConfig()
		cfg.Articles = articles
		cfg.Seed = seed
		return gen.NewsWorkload(cfg, window, 2)
	case "drift":
		return gen.BenchDriftWorkload(edges, hosts, window)
	case "many-queries":
		return gen.BenchManyQueriesWorkload(200, edges, hosts, window)
	default:
		log.Fatalf("loadgen: unknown workload %q (want netflow, news, drift or many-queries)", name)
		panic("unreachable")
	}
}

// connect dials the daemon through the public API, retrying until it is
// healthy or the timeout elapses.
func connect(ctx context.Context, addr string, timeout time.Duration) *streamworks.Remote {
	deadline := time.Now().Add(timeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		rem, err := streamworks.Connect(hctx, addr)
		cancel()
		if err == nil {
			return rem
		}
		if time.Now().After(deadline) {
			log.Fatalf("loadgen: server not healthy after %s: %v", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// settle polls metrics until the deduplicated match count stops moving, so
// in-flight matches still crossing shards and the fan-out are counted.
func settle(ctx context.Context, rem *streamworks.Remote) *serverMetrics {
	var last uint64
	stable := 0
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := rem.ServerMetrics(ctx)
		if err != nil {
			log.Fatalf("loadgen: metrics: %v", err)
		}
		if m.Engine.MatchesEmitted == last {
			stable++
		} else {
			stable = 0
			last = m.Engine.MatchesEmitted
		}
		if stable >= 3 || time.Now().After(deadline) {
			return &serverMetrics{Engine: m.Engine, Shards: m.Shards, Server: m.Server, Obs: m.Obs}
		}
		time.Sleep(150 * time.Millisecond)
	}
}

type serverMetrics struct {
	Engine core.Metrics
	Shards []core.Metrics
	Server any
	Obs    *obs.Snapshot
}

type latencySummary struct {
	// Samples is every match observed; Sampled is how many of them are in
	// the reservoir the percentiles are computed over (equal until the
	// reservoir fills). Mean and Max are exact over all Samples.
	Samples int     `json:"samples"`
	Sampled int     `json:"reservoir_samples"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

// latencyReservoir is a bounded uniform sample (Vitter's algorithm R) of
// per-match latencies. The mean and max are tracked exactly over every
// observation; percentiles are exact order statistics over the reservoir, so
// memory stays fixed however long the run is.
type latencyReservoir struct {
	vals []float64
	cap  int
	n    int64
	sum  float64
	max  float64
	rng  *rand.Rand
}

func newReservoir(size int, seed int64) *latencyReservoir {
	if size <= 0 {
		size = 65536
	}
	return &latencyReservoir{
		vals: make([]float64, 0, min(size, 65536)),
		cap:  size,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (r *latencyReservoir) add(v float64) {
	r.n++
	r.sum += v
	if v > r.max {
		r.max = v
	}
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.cap) {
		r.vals[j] = v
	}
}

func (r *latencyReservoir) summary() latencySummary {
	if r.n == 0 {
		return latencySummary{}
	}
	ms := append([]float64(nil), r.vals...)
	sort.Float64s(ms)
	pick := func(p float64) float64 {
		idx := int(p * float64(len(ms)-1))
		return ms[idx]
	}
	return latencySummary{
		Samples: int(r.n),
		Sampled: len(ms),
		Mean:    r.sum / float64(r.n),
		P50:     pick(0.50),
		P90:     pick(0.90),
		P99:     pick(0.99),
		Max:     r.max,
	}
}

// segmentSummary is one latency segment of the daemon's obs snapshot, in
// the fixed journey order.
type segmentSummary struct {
	Segment string  `json:"segment"`
	Count   uint64  `json:"count"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   float64 `json:"p50_ns"`
	P99NS   float64 `json:"p99_ns"`
}

// journeySegments is the wall-clock segment order of an edge's path through
// the daemon; detect_stream_lag is excluded (stream time, not wall time).
var journeySegments = []string{
	obs.SegIngestQueueWait,
	obs.SegShardMailbox,
	obs.SegLocalSearch,
	obs.SegSJTreeJoin,
	obs.SegDispatch,
	obs.SegHTTPFlush,
}

// segmentBreakdown extracts the per-segment summaries from the daemon's obs
// snapshot and reports which share of the measured mean detect-and-deliver
// latency (milliseconds) the summed per-segment means account for — the
// "where did my 4.3 seconds go" closure check.
func segmentBreakdown(snap *obs.Snapshot, measuredMeanMS float64) ([]segmentSummary, float64) {
	var segs []segmentSummary
	sumNS := 0.0
	for _, name := range journeySegments {
		hs, ok := snap.Find(obs.SegmentHistogramName, name)
		if !ok {
			continue
		}
		segs = append(segs, segmentSummary{
			Segment: name, Count: hs.Count,
			MeanNS: hs.Mean, P50NS: hs.P50, P99NS: hs.P99,
		})
		sumNS += hs.Mean
	}
	coverage := 0.0
	if measuredMeanMS > 0 {
		coverage = 100 * sumNS / (measuredMeanMS * 1e6)
	}
	return segs, coverage
}

type shardCounters struct {
	Shard          int    `json:"shard"`
	EdgesProcessed uint64 `json:"edges_processed"`
	MatchesEmitted uint64 `json:"matches_pre_dedup"`
	LocalSearches  uint64 `json:"local_searches"`
	LiveEdges      int    `json:"live_edges"`
}

type engineTotals struct {
	EdgesProcessed uint64 `json:"edges_processed"`
	MatchesEmitted uint64 `json:"matches_emitted"`
	LocalSearches  uint64 `json:"local_searches"`
	PartialsPruned uint64 `json:"partials_pruned"`
	ExpiredEdges   uint64 `json:"expired_edges"`
}

func engineCounters(m core.Metrics) engineTotals {
	return engineTotals{
		EdgesProcessed: m.EdgesProcessed,
		MatchesEmitted: m.MatchesEmitted,
		LocalSearches:  m.LocalSearches,
		PartialsPruned: m.PartialsPruned,
		ExpiredEdges:   m.ExpiredEdges,
	}
}

type benchResult struct {
	Workload     string          `json:"workload"`
	Transport    string          `json:"transport"`
	Edges        int             `json:"edges"`
	Batch        int             `json:"batch"`
	Shards       int             `json:"shards"`
	IngestSecs   float64         `json:"ingest_seconds"`
	EdgesPerSec  float64         `json:"edges_per_sec"`
	Matches      int             `json:"matches_delivered"`
	Truncated    bool            `json:"subscription_truncated"`
	Rejected429  uint64          `json:"ingest_retries"`
	LatencyMS    latencySummary  `json:"match_latency_ms"`
	EngineTotals engineTotals    `json:"engine"`
	PerShard     []shardCounters `json:"per_shard"`
	ServerSide   any             `json:"server"`
	// Segments is the daemon's per-segment latency breakdown (present when
	// the daemon runs with -obs); SegmentCoverage is the percentage of the
	// measured mean detect-and-deliver latency the summed segment means
	// account for.
	Segments        []segmentSummary `json:"segments,omitempty"`
	SegmentCoverage float64          `json:"segment_coverage_pct,omitempty"`
	// JourneyMeanMS is the daemon's match-weighted arrival→flush journey mean
	// and JourneyCoverage its share of the measured mean detect-and-deliver
	// latency — the match-weighted closure check (both sides weight by match,
	// so queue-depth ramps cancel out instead of skewing the comparison).
	JourneyMeanMS   float64 `json:"journey_mean_ms,omitempty"`
	JourneyCoverage float64 `json:"journey_coverage_pct,omitempty"`
}
