// Command swvet runs the StreamWorks analyzer suite over the module. It is
// the project's multichecker: `go run ./cmd/swvet ./...` type-checks every
// matched package against the compiler's export data and reports one line
// per finding, `file:line:col: message (analyzer)`.
//
// Exit codes: 0 clean, 1 findings reported, 2 packages failed to load or
// type-check. Findings are suppressed per line with
// `//swvet:ignore <analyzers> -- <why>` on (or directly above) the
// offending line; walltime additionally honours `//swvet:wallclock` on a
// function's doc comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/streamworks/streamworks/internal/analysis"
	"github.com/streamworks/streamworks/internal/analysis/swvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("swvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list = fs.Bool("list", false, "print the analyzer names and exit")
		only = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: swvet [-list] [-run a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := swvet.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "swvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "swvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "swvet: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "swvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "swvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
