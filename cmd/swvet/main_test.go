package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	for _, f := range []*os.File{outF, errF} {
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	ob, _ := os.ReadFile(outF.Name())
	eb, _ := os.ReadFile(errF.Name())
	return code, string(ob), string(eb)
}

func TestList(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("swvet -list exited %d", code)
	}
	for _, name := range []string{"scratchalias", "walltime", "maporder", "sinkleak", "errcmp", "copylocks", "lostcancel", "nilcmp"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, []string{"-run", "nosuch", "./..."})
	if code != 2 {
		t.Fatalf("unknown analyzer: got exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing explanation: %q", errOut)
	}
}

// TestCleanPackage runs the real loader and suite over this command's own
// package, which must be finding-free.
func TestCleanPackage(t *testing.T) {
	code, out, errOut := capture(t, []string{"."})
	if code != 0 {
		t.Fatalf("swvet . exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

// TestFindings points the suite at a fixture tree (an analyzer's testdata
// package, which deliberately violates errcmp) and expects exit 1 with
// file:line findings.
func TestFindings(t *testing.T) {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../../internal/analysis/passes/errcmp/testdata/src/a"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(dir); err != nil {
			t.Fatal(err)
		}
	}()
	code, out, _ := capture(t, []string{"-run", "errcmp", "."})
	if code != 1 {
		t.Fatalf("fixture scan: got exit %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "(errcmp)") {
		t.Errorf("findings missing analyzer tag:\n%s", out)
	}
}
