package streamworks

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/export"
)

// Local is the single-engine backend: one core engine behind a mutex, so
// the public concurrency contract holds even though the underlying engine is
// single-threaded. Matches are pushed to subscriptions synchronously, on the
// goroutine whose Process call emitted them.
type Local struct {
	mu      sync.Mutex
	eng     *core.Engine
	cfg     config // registration defaults (strategy, adaptive)
	queries map[string]*Query
	subs    map[int]*localSub
	seq     int
	closed  bool

	// deadMu guards the list of subscriptions closed since the last sweep.
	// Subscription.Close only touches this list and the sub's own flag, so
	// it is safe from any goroutine — including from inside the
	// subscription's own sink, which runs while mu is held; the engine-side
	// sink de-registration is deferred to the next mu-holding call.
	deadMu sync.Mutex
	dead   []int

	// dur is the durability glue (nil without WithDataDir). pendingNotes
	// accumulates (query, signature, span-start) emissions observed during
	// the current ProcessBatch/Advance call; they are acknowledged to the
	// WAL only when the call returns, i.e. strictly after every
	// (synchronous) subscriber sink has seen them — noted implies
	// delivered, which is what makes crash-time suppression safe.
	dur          *durable
	pendingNotes []pendingNote
}

type pendingNote struct {
	query, signature string
	spanStart        int64
}

var _ Engine = (*Local)(nil)

// New builds a single-engine backend. With no options it uses the default
// engine configuration (unbounded retention, summaries on).
func New(opts ...Option) *Local {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.finishObs()
	l := &Local{
		eng:     core.New(&cfg.engine),
		cfg:     cfg,
		queries: make(map[string]*Query),
		subs:    make(map[int]*localSub),
	}
	dur, rec := openDurable(&l.cfg)
	l.dur = dur
	if rec != nil {
		dur.replaying.Store(true)
		replayRecovery(l, dur, rec, func() error { return nil })
		dur.replaying.Store(false)
	}
	if dur != nil && dur.man != nil && !dur.manual {
		// Auto-ack emissions: collect at dispatch, note at end of the
		// mutating call once every subscriber sink has returned.
		l.eng.Subscribe("", core.MatchSinkFunc(func(ev core.MatchEvent) {
			l.pendingNotes = append(l.pendingNotes, pendingNote{
				query:     ev.Query,
				signature: ev.Match.Signature(),
				spanStart: int64(ev.Match.Span.Start),
			})
		}))
	}
	return l
}

// flushNotesLocked acknowledges the emissions collected during the current
// call to the WAL. Caller holds l.mu.
func (l *Local) flushNotesLocked() {
	if len(l.pendingNotes) == 0 {
		return
	}
	for _, n := range l.pendingNotes {
		l.dur.note(n.query, n.signature, n.spanStart)
	}
	l.pendingNotes = l.pendingNotes[:0]
}

// localSub is one push subscription on a Local engine.
type localSub struct {
	l      *Local
	id     int
	cancel func() // de-registers the core sink; called under l.mu (sweep)
	closed atomic.Bool
	done   chan struct{}
	once   sync.Once
}

func (s *localSub) Done() <-chan struct{} { return s.done }
func (s *localSub) Err() error            { return nil }

// Close cancels the subscription: delivery stops immediately (the wrapper
// sink checks the flag), Done closes, and the engine-side sink is reclaimed
// on the engine's next call. Idempotent and safe from inside the
// subscription's own sink.
func (s *localSub) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.l.deadMu.Lock()
	s.l.dead = append(s.l.dead, s.id)
	s.l.deadMu.Unlock()
	s.once.Do(func() { close(s.done) })
	return nil
}

// sweepLocked reclaims engine-side sinks of closed subscriptions. Caller
// holds l.mu.
func (l *Local) sweepLocked() {
	l.deadMu.Lock()
	dead := l.dead
	l.dead = nil
	l.deadMu.Unlock()
	for _, id := range dead {
		if sub, ok := l.subs[id]; ok {
			delete(l.subs, id)
			sub.cancel()
		}
	}
}

// RegisterQuery installs a continuous query with the engine's registration
// defaults.
func (l *Local) RegisterQuery(ctx context.Context, q *Query) error {
	return l.RegisterQueryWith(ctx, q, RegisterOptions{})
}

// RegisterQueryWith installs a continuous query, overriding the engine's
// plan-strategy and adaptive-planning defaults per RegisterOptions.
func (l *Local) RegisterQueryWith(ctx context.Context, q *Query, opts RegisterOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	reg, err := l.eng.RegisterQuery(q, l.cfg.registrationOptions(opts)...)
	if err != nil {
		return err
	}
	l.queries[reg.Name()] = q
	l.dur.appendRegister(l.cfg.registerRecord(q, opts))
	return nil
}

// UnregisterQuery removes a registered query and its partial state.
func (l *Local) UnregisterQuery(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	if err := l.eng.UnregisterQuery(name); err != nil {
		return err
	}
	delete(l.queries, name)
	l.dur.appendUnregister(name)
	return nil
}

// Process ingests one stream edge; matches it completes are pushed to
// subscriptions before Process returns.
func (l *Local) Process(ctx context.Context, se StreamEdge) error {
	return l.ProcessBatch(ctx, []StreamEdge{se})
}

// ProcessBatch ingests a batch of edges in order, checking ctx between
// edges.
func (l *Local) ProcessBatch(ctx context.Context, edges []StreamEdge) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	// Write-ahead, overlapped: the log write runs concurrently with engine
	// processing, and the join below makes the batch durable (or durability
	// degraded) before ProcessBatch returns — so a batch is never acked
	// upstream, and its emission notes never flushed, ahead of its frame
	// reaching the OS.
	join := l.dur.appendEdgesAsync(edges)
	if join != nil {
		defer join()
	}
	for _, se := range edges {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.eng.ProcessEdge(se)
	}
	if join != nil {
		join()
	}
	l.flushNotesLocked()
	return nil
}

// Advance signals the passage of stream time in the absence of edges.
func (l *Local) Advance(ctx context.Context, ts Timestamp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.dur.appendAdvance(ts)
	l.eng.Advance(ts)
	l.flushNotesLocked()
	return nil
}

// Subscribe attaches sink to the query named by queryFilter ("" for all
// queries). The sink runs synchronously inside Process; it may close its
// own subscription, but must not otherwise call back into this engine.
func (l *Local) Subscribe(queryFilter string, sink MatchSink) (Subscription, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	l.sweepLocked()
	if queryFilter != "" {
		if _, known := l.queries[queryFilter]; !known {
			return nil, ErrUnknownQuery
		}
	}
	l.seq++
	sub := &localSub{l: l, id: l.seq, done: make(chan struct{})}
	// The core sink fires while l.mu is held by Process, so reading the
	// query map here is race-free.
	sub.cancel = l.eng.Subscribe(queryFilter, core.MatchSinkFunc(func(ev core.MatchEvent) {
		if sub.closed.Load() {
			return
		}
		rep := export.BuildReport(ev, l.queries[ev.Query], nil)
		if l.cfg.engine.Obs.Enabled && l.cfg.engine.Obs.Clock != nil {
			rep.DeliveredWallNS = l.cfg.engine.Obs.Clock.Now()
		}
		sink.OnMatch(rep)
	}))
	l.subs[sub.id] = sub
	// Recovered matches that were never delivered before the crash replay
	// to the first matching subscriber, exactly once.
	for _, m := range l.dur.takeBacklog(queryFilter) {
		sink.OnMatch(m)
		if !l.dur.manual {
			l.dur.note(m.Query, m.Signature, m.SpanStart)
		}
	}
	return sub, nil
}

// Durability reports the engine's durability mode and WAL counters.
func (l *Local) Durability() DurabilityStats { return l.dur.stats() }

// RegisteredQueries returns the currently registered queries, sorted by
// name — including ones recovered from the WAL at construction.
func (l *Local) RegisteredQueries() []*Query {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Query, 0, len(l.queries))
	for _, q := range l.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// AckDelivered acknowledges, under WithManualDeliveryAck, that a match has
// reached its consumer; once acknowledged (and checkpointed) the match is
// suppressed instead of redelivered after a crash.
func (l *Local) AckDelivered(query, signature string, spanStart int64) {
	l.dur.note(query, signature, spanStart)
}

// ObsEnabled reports whether the engine was built WithObservability.
func (l *Local) ObsEnabled() bool { return l.eng.ObsEnabled() }

// ObsSnapshot copies the engine's observability registry: counters and
// per-segment latency histograms. It is empty unless the engine was built
// WithObservability, and safe from any goroutine (registry cells are
// atomic).
func (l *Local) ObsSnapshot() ObsSnapshot { return l.eng.ObsRegistry().Snapshot() }

// TraceDump returns the buffered edge-journey trace events, oldest first;
// nil unless the engine was built WithTraceSampling.
func (l *Local) TraceDump() []TraceEvent { return l.cfg.engine.Obs.Tracer.Dump() }

// Metrics snapshots engine counters; it keeps working after Close.
func (l *Local) Metrics(ctx context.Context) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Metrics(), nil
}

// Close shuts the engine down: idempotent, and every subscription's Done
// closes. Subsequent mutating calls return ErrClosed.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.sweepLocked()
	subs := l.subs
	l.subs = map[int]*localSub{}
	for _, sub := range subs {
		sub.closed.Store(true)
		sub.cancel()
	}
	l.mu.Unlock()
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.done) })
	}
	// Every sink has returned (delivery is synchronous), so the final
	// checkpoint covers all delivered matches: a graceful restart
	// redelivers nothing.
	l.dur.close()
	return nil
}
