package streamworks

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/streamworks/streamworks/internal/core"
	"github.com/streamworks/streamworks/internal/export"
)

// Local is the single-engine backend: one core engine behind a mutex, so
// the public concurrency contract holds even though the underlying engine is
// single-threaded. Matches are pushed to subscriptions synchronously, on the
// goroutine whose Process call emitted them.
type Local struct {
	mu      sync.Mutex
	eng     *core.Engine
	cfg     config // registration defaults (strategy, adaptive)
	queries map[string]*Query
	subs    map[int]*localSub
	seq     int
	closed  bool

	// deadMu guards the list of subscriptions closed since the last sweep.
	// Subscription.Close only touches this list and the sub's own flag, so
	// it is safe from any goroutine — including from inside the
	// subscription's own sink, which runs while mu is held; the engine-side
	// sink de-registration is deferred to the next mu-holding call.
	deadMu sync.Mutex
	dead   []int
}

var _ Engine = (*Local)(nil)

// New builds a single-engine backend. With no options it uses the default
// engine configuration (unbounded retention, summaries on).
func New(opts ...Option) *Local {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.finishObs()
	return &Local{
		eng:     core.New(&cfg.engine),
		cfg:     cfg,
		queries: make(map[string]*Query),
		subs:    make(map[int]*localSub),
	}
}

// localSub is one push subscription on a Local engine.
type localSub struct {
	l      *Local
	id     int
	cancel func() // de-registers the core sink; called under l.mu (sweep)
	closed atomic.Bool
	done   chan struct{}
	once   sync.Once
}

func (s *localSub) Done() <-chan struct{} { return s.done }
func (s *localSub) Err() error            { return nil }

// Close cancels the subscription: delivery stops immediately (the wrapper
// sink checks the flag), Done closes, and the engine-side sink is reclaimed
// on the engine's next call. Idempotent and safe from inside the
// subscription's own sink.
func (s *localSub) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.l.deadMu.Lock()
	s.l.dead = append(s.l.dead, s.id)
	s.l.deadMu.Unlock()
	s.once.Do(func() { close(s.done) })
	return nil
}

// sweepLocked reclaims engine-side sinks of closed subscriptions. Caller
// holds l.mu.
func (l *Local) sweepLocked() {
	l.deadMu.Lock()
	dead := l.dead
	l.dead = nil
	l.deadMu.Unlock()
	for _, id := range dead {
		if sub, ok := l.subs[id]; ok {
			delete(l.subs, id)
			sub.cancel()
		}
	}
}

// RegisterQuery installs a continuous query with the engine's registration
// defaults.
func (l *Local) RegisterQuery(ctx context.Context, q *Query) error {
	return l.RegisterQueryWith(ctx, q, RegisterOptions{})
}

// RegisterQueryWith installs a continuous query, overriding the engine's
// plan-strategy and adaptive-planning defaults per RegisterOptions.
func (l *Local) RegisterQueryWith(ctx context.Context, q *Query, opts RegisterOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	reg, err := l.eng.RegisterQuery(q, l.cfg.registrationOptions(opts)...)
	if err != nil {
		return err
	}
	l.queries[reg.Name()] = q
	return nil
}

// UnregisterQuery removes a registered query and its partial state.
func (l *Local) UnregisterQuery(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	if err := l.eng.UnregisterQuery(name); err != nil {
		return err
	}
	delete(l.queries, name)
	return nil
}

// Process ingests one stream edge; matches it completes are pushed to
// subscriptions before Process returns.
func (l *Local) Process(ctx context.Context, se StreamEdge) error {
	return l.ProcessBatch(ctx, []StreamEdge{se})
}

// ProcessBatch ingests a batch of edges in order, checking ctx between
// edges.
func (l *Local) ProcessBatch(ctx context.Context, edges []StreamEdge) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.sweepLocked()
	for _, se := range edges {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.eng.ProcessEdge(se)
	}
	return nil
}

// Advance signals the passage of stream time in the absence of edges.
func (l *Local) Advance(ctx context.Context, ts Timestamp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.eng.Advance(ts)
	return nil
}

// Subscribe attaches sink to the query named by queryFilter ("" for all
// queries). The sink runs synchronously inside Process; it may close its
// own subscription, but must not otherwise call back into this engine.
func (l *Local) Subscribe(queryFilter string, sink MatchSink) (Subscription, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	l.sweepLocked()
	if queryFilter != "" {
		if _, known := l.queries[queryFilter]; !known {
			return nil, ErrUnknownQuery
		}
	}
	l.seq++
	sub := &localSub{l: l, id: l.seq, done: make(chan struct{})}
	// The core sink fires while l.mu is held by Process, so reading the
	// query map here is race-free.
	sub.cancel = l.eng.Subscribe(queryFilter, core.MatchSinkFunc(func(ev core.MatchEvent) {
		if sub.closed.Load() {
			return
		}
		rep := export.BuildReport(ev, l.queries[ev.Query], nil)
		if l.cfg.engine.Obs.Enabled && l.cfg.engine.Obs.Clock != nil {
			rep.DeliveredWallNS = l.cfg.engine.Obs.Clock.Now()
		}
		sink.OnMatch(rep)
	}))
	l.subs[sub.id] = sub
	return sub, nil
}

// ObsEnabled reports whether the engine was built WithObservability.
func (l *Local) ObsEnabled() bool { return l.eng.ObsEnabled() }

// ObsSnapshot copies the engine's observability registry: counters and
// per-segment latency histograms. It is empty unless the engine was built
// WithObservability, and safe from any goroutine (registry cells are
// atomic).
func (l *Local) ObsSnapshot() ObsSnapshot { return l.eng.ObsRegistry().Snapshot() }

// TraceDump returns the buffered edge-journey trace events, oldest first;
// nil unless the engine was built WithTraceSampling.
func (l *Local) TraceDump() []TraceEvent { return l.cfg.engine.Obs.Tracer.Dump() }

// Metrics snapshots engine counters; it keeps working after Close.
func (l *Local) Metrics(ctx context.Context) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Metrics(), nil
}

// Close shuts the engine down: idempotent, and every subscription's Done
// closes. Subsequent mutating calls return ErrClosed.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.sweepLocked()
	subs := l.subs
	l.subs = map[int]*localSub{}
	for _, sub := range subs {
		sub.closed.Store(true)
		sub.cancel()
	}
	l.mu.Unlock()
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.done) })
	}
	return nil
}
